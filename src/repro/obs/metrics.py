"""A hierarchical metrics registry: counters, timers, histograms.

Metric names are dotted paths (``stratum.max.slice_seconds``); the
registry is flat internally (one dict lookup per touch, cheap enough
for hot paths) and hierarchical at the edges — :meth:`snapshot`
returns a nested dict keyed by path segment, and :meth:`scope` gives a
prefixed view so a subsystem can emit under its own branch without
knowing where it is mounted.

Three instrument kinds:

* :class:`Counter` — a monotonically adjusted integer (events, rows).
* :class:`Timer` — aggregate duration: total seconds over N
  observations.  The §VII-F measured-cost mode divides totals recorded
  around whole executions by slice/invocation counts, so per-event
  means come out of two ``perf_counter`` calls per statement instead
  of two per event.
* :class:`Histogram` — power-of-two bucketed distribution with
  min/max/total, for values whose spread matters (undo-log depth,
  per-period wall times).

Everything is in-process and single-threaded, like the engine itself.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class Counter:
    """A named integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Timer:
    """Aggregate wall time: ``total`` seconds across ``count`` events.

    ``record(seconds, events)`` attributes one measured duration to
    several events at once — the cheap way to get a per-event mean
    without timing each event individually.
    """

    __slots__ = ("name", "count", "total", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float, events: int = 1) -> None:
        if events <= 0:
            return
        self.count += events
        self.total += seconds
        per_event = seconds / events
        if per_event > self.max:
            self.max = per_event

    @property
    def mean(self) -> Optional[float]:
        """Mean seconds per event, or None with no observations."""
        if self.count == 0:
            return None
        return self.total / self.count

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timer({self.name}: {self.count} events, {self.total:.6f}s)"


class Histogram:
    """Power-of-two bucketed distribution of non-negative values.

    Bucket ``k`` counts values ``v`` with ``2**(k-1) < v <= 2**k``
    (bucket 0 holds zeros).  Enough resolution to see whether the
    undo log stays shallow or a per-period latency has a long tail,
    at the cost of two integer operations per observation.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: dict[int, int] = {}

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0:
            bucket = 0
        elif value >= 1:
            bucket = int(value).bit_length()
        else:  # fractional values (seconds) land in negative buckets
            bucket = -int(1.0 / value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.buckets = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}: {self.count} samples)"


class MetricsRegistry:
    """The process-wide metric store, one per :class:`Database`."""

    __slots__ = ("_counters", "_timers", "_histograms", "gauges")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}
        # gauges: externally-owned point-in-time values (set, not
        # accumulated) — e.g. the undo log's high-water mark
        self.gauges: dict[str, float] = {}

    # -- instrument access (create on first touch) ----------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def timer(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer(name)
        return timer

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    # -- conveniences ----------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def value(self, name: str) -> int:
        """Current value of a counter (0 if never touched)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def mean(self, name: str) -> Optional[float]:
        """Mean of a timer's per-event seconds (None if unobserved)."""
        timer = self._timers.get(name)
        return timer.mean if timer is not None else None

    def sum_prefix(self, prefix: str) -> int:
        """Sum of every counter whose name starts with ``prefix``."""
        return sum(
            counter.value
            for name, counter in self._counters.items()
            if name.startswith(prefix)
        )

    def reset_prefix(self, prefix: str) -> None:
        """Zero every counter whose name starts with ``prefix``."""
        for name, counter in self._counters.items():
            if name.startswith(prefix):
                counter.reset()

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def max_gauge(self, name: str, value: float) -> None:
        """Raise a gauge to ``value`` if it is a new high-water mark."""
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self, prefix)

    # -- introspection ---------------------------------------------------

    def names(self) -> Iterator[str]:
        yield from self._counters
        yield from self._timers
        yield from self._histograms
        yield from self.gauges

    def flat(self) -> dict[str, Any]:
        """One flat dict: counters as ints, timers/histograms as dicts."""
        out: dict[str, Any] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, timer in self._timers.items():
            out[name] = {
                "count": timer.count,
                "total_seconds": timer.total,
                "mean_seconds": timer.mean,
                "max_seconds": timer.max,
            }
        for name, histogram in self._histograms.items():
            out[name] = {
                "count": histogram.count,
                "total": histogram.total,
                "mean": histogram.mean,
                "min": histogram.min,
                "max": histogram.max,
                "buckets": dict(sorted(histogram.buckets.items())),
            }
        for name, value in self.gauges.items():
            out[name] = value
        return out

    def snapshot(self) -> dict[str, Any]:
        """The hierarchical view: dotted names become nested dicts."""
        tree: dict[str, Any] = {}
        for name, value in sorted(self.flat().items()):
            node = tree
            parts = name.split(".")
            for part in parts[:-1]:
                child = node.get(part)
                if not isinstance(child, dict) or part not in node:
                    child = node[part] = {}
                node = child
            node[parts[-1]] = value
        return tree

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for timer in self._timers.values():
            timer.reset()
        for histogram in self._histograms.values():
            histogram.reset()
        self.gauges.clear()


class MetricsScope:
    """A prefixed view of a registry (``scope("stratum").inc("slices")``
    touches ``stratum.slices``)."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self.registry = registry
        self.prefix = prefix.rstrip(".")

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self.registry.counter(self._name(name))

    def timer(self, name: str) -> Timer:
        return self.registry.timer(self._name(name))

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(self._name(name))

    def inc(self, name: str, n: int = 1) -> None:
        self.registry.inc(self._name(name), n)

    def value(self, name: str) -> int:
        return self.registry.value(self._name(name))

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self.registry, self._name(prefix))
