"""Harness and reporting tests (fast cells only)."""

import pytest

from repro.bench.harness import CellResult, context_bounds, run_cell, run_grid
from repro.bench.reporting import (
    classify_queries,
    classify_query,
    format_series_table,
)
from repro.taubench import get_query
from repro.temporal.stratum import SlicingStrategy


class TestRunCell:
    def test_cell_records_metrics(self, small_dataset):
        query = get_query("q5")
        cell = run_cell(small_dataset, query, SlicingStrategy.MAX, 7)
        assert cell.ok
        assert cell.seconds > 0
        assert cell.rows > 0
        assert cell.routine_calls > 0
        assert cell.query == "q5"
        assert cell.dataset == "DS1.SMALL"

    def test_perst_inapplicable_cell(self, small_dataset):
        query = get_query("q17b")
        cell = run_cell(small_dataset, query, SlicingStrategy.PERST, 7)
        assert cell.inapplicable
        assert not cell.ok

    def test_context_bounds_formatting(self, small_dataset):
        begin, end = context_bounds(small_dataset, 7)
        assert len(begin) == 10 and len(end) == 10
        assert begin < end

    def test_run_grid_cross_product(self, small_dataset):
        cells = run_grid(
            small_dataset,
            [get_query("q5")],
            [SlicingStrategy.MAX, SlicingStrategy.PERST],
            [1, 7],
            warm=False,
        )
        assert len(cells) == 4


def make_cell(query, strategy, days, seconds, dataset="D"):
    return CellResult(
        query=query, strategy=strategy, dataset=dataset,
        context_days=days, seconds=seconds, rows=1,
    )


class TestClassification:
    CONTEXTS = [1, 30]

    def test_class_a(self):
        cells = [
            make_cell("q", "max", 1, 0.5), make_cell("q", "perst", 1, 0.1),
            make_cell("q", "max", 30, 2.0), make_cell("q", "perst", 30, 0.1),
        ]
        assert classify_query("q", "D", self.CONTEXTS, cells) == "A"

    def test_class_b_crossover(self):
        cells = [
            make_cell("q", "max", 1, 0.1), make_cell("q", "perst", 1, 0.5),
            make_cell("q", "max", 30, 2.0), make_cell("q", "perst", 30, 0.5),
        ]
        assert classify_query("q", "D", self.CONTEXTS, cells) == "B"

    def test_class_c(self):
        cells = [
            make_cell("q", "max", 1, 0.1), make_cell("q", "perst", 1, 0.5),
            make_cell("q", "max", 30, 0.1), make_cell("q", "perst", 30, 5.0),
        ]
        assert classify_query("q", "D", self.CONTEXTS, cells) == "C"

    def test_class_d_approaches(self):
        cells = [
            make_cell("q", "max", 1, 0.1), make_cell("q", "perst", 1, 0.5),
            make_cell("q", "max", 30, 0.4), make_cell("q", "perst", 30, 0.45),
        ]
        assert classify_query("q", "D", self.CONTEXTS, cells) == "D"

    def test_inapplicable_gives_none(self):
        cells = [
            make_cell("q", "max", 1, 0.1),
            CellResult(query="q", strategy="perst", dataset="D",
                       context_days=1, inapplicable=True),
            make_cell("q", "max", 30, 0.4),
            CellResult(query="q", strategy="perst", dataset="D",
                       context_days=30, inapplicable=True),
        ]
        assert classify_query("q", "D", self.CONTEXTS, cells) is None

    def test_classify_many(self):
        cells = [
            make_cell("a", "max", 1, 1.0), make_cell("a", "perst", 1, 0.1),
            make_cell("a", "max", 30, 1.0), make_cell("a", "perst", 30, 0.1),
        ]
        classes = classify_queries(["a", "missing"], "D", self.CONTEXTS, cells)
        assert classes["a"] == "A"
        assert classes["missing"] is None


class TestFormatting:
    def test_table_contains_all_cells(self):
        cells = [
            make_cell("q1", "max", 1, 0.5), make_cell("q1", "perst", 1, 0.25),
            make_cell("q1", "max", 30, 1.5), make_cell("q1", "perst", 30, 0.25),
        ]
        table = format_series_table(cells, title="demo")
        assert "demo" in table
        assert "0.500/0.250" in table
        assert "1.500/0.250" in table

    def test_inapplicable_rendered_na(self):
        cells = [
            make_cell("q1", "max", 1, 0.5),
            CellResult(query="q1", strategy="perst", dataset="D",
                       context_days=1, inapplicable=True),
        ]
        assert "0.500/n/a" in format_series_table(cells)

    def test_metric_selection(self):
        cells = [make_cell("q1", "max", 1, 0.5)]
        cells[0].routine_calls = 42
        table = format_series_table(cells, metric="routine_calls")
        assert "42/?" in table
