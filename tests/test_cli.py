"""Shell tests: the REPL engine driven line by line."""

import pytest

from repro.cli import Shell, format_table, format_value
from repro.sqlengine.values import Date, Null


@pytest.fixture
def shell():
    return Shell()


def run(shell, *lines):
    output = None
    for line in lines:
        output = shell.feed(line)
    return output


class TestStatements:
    def test_ddl_and_query(self, shell):
        run(shell, "CREATE TABLE t (a INTEGER);")
        run(shell, "INSERT INTO t VALUES (1), (2);")
        output = run(shell, "SELECT a FROM t ORDER BY a;")
        assert "1" in output and "2" in output
        assert "(2 rows)" in output

    def test_multiline_statement(self, shell):
        run(shell, "CREATE TABLE t (a INTEGER);")
        assert shell.feed("SELECT a") is None  # buffered
        assert shell.prompt != "taupsm> "
        output = shell.feed("FROM t;")
        assert "(0 rows)" in output

    def test_error_reported_not_raised(self, shell):
        output = run(shell, "SELECT * FROM nope;")
        assert output.startswith("error:")

    def test_sequenced_query_shows_strategy(self, shell):
        run(shell, "CREATE TABLE t (a INTEGER);")
        run(shell, "ALTER TABLE t ADD VALIDTIME;")
        run(shell, ".now 2010-06-01")
        run(shell, "INSERT INTO t (a) VALUES (7);")
        output = run(
            shell,
            "VALIDTIME [DATE '2010-06-01', DATE '2010-06-10'] SELECT a FROM t;",
        )
        assert "(strategy:" in output
        assert "2010-06-01" in output

    def test_blank_line_ignored(self, shell):
        assert shell.feed("") is None


class TestMetaCommands:
    def test_help(self, shell):
        assert ".tables" in shell.meta(".help")

    def test_quit(self, shell):
        shell.meta(".quit")
        assert shell.done

    def test_tables_lists_dimensions(self, shell):
        run(shell, "CREATE TABLE t (a INTEGER);")
        run(shell, "ALTER TABLE t ADD VALIDTIME;")
        run(shell, "CREATE TABLE u (b INTEGER);")
        run(shell, "ALTER TABLE u ADD TRANSACTIONTIME;")
        output = shell.meta(".tables")
        assert "t (0 rows) [valid time]" in output
        assert "u (0 rows) [transaction time]" in output

    def test_routines(self, shell):
        run(
            shell,
            "CREATE FUNCTION f () RETURNS INTEGER LANGUAGE SQL RETURN 1;",
        )
        assert "function f" in shell.meta(".routines")

    def test_now_get_and_set(self, shell):
        assert "CURRENT_DATE" in shell.meta(".now")
        assert "2010-04-01" in shell.meta(".now 2010-04-01")

    def test_clock(self, shell):
        assert "tracking CURRENT_DATE" in shell.meta(".clock")
        assert "2010-04-01" in shell.meta(".clock 2010-04-01")
        assert "tracking CURRENT_DATE" in shell.meta(".clock none")

    def test_strategy(self, shell):
        assert "perst" in shell.meta(".strategy perst")
        assert "must be one of" in shell.meta(".strategy bogus")

    def test_transform(self, shell):
        run(shell, "CREATE TABLE t (a INTEGER);")
        run(shell, "ALTER TABLE t ADD VALIDTIME;")
        output = shell.meta(".transform SELECT a FROM t")
        assert "CURRENT_DATE" in output

    def test_stats(self, shell):
        assert "statements:" in shell.meta(".stats")

    def test_unknown(self, shell):
        assert "unknown meta-command" in shell.meta(".wat")

    def test_load_rejects_bad_name(self, shell):
        assert "error" in shell.meta(".load DS9 SMALL")


class TestFormatting:
    def test_format_value(self):
        assert format_value(Null) == "NULL"
        assert format_value(Date.from_iso("2010-01-02")) == "2010-01-02"
        assert format_value(1.5) == "1.5"

    def test_format_table_alignment(self):
        text = format_table(["name", "n"], [["ab", 1], ["c", 22]])
        lines = text.split("\n")
        assert lines[0].startswith("name")
        assert "(2 rows)" in lines[-1]

    def test_singular_row_count(self):
        assert "(1 row)" in format_table(["a"], [[1]])


class TestLoadDataset:
    def test_load_replaces_stratum(self, shell):
        output = shell.meta(".load DS1 SMALL")
        assert "loaded DS1.SMALL" in output
        tables = shell.meta(".tables")
        assert "item" in tables and "[valid time]" in tables

    def test_loaded_dataset_queryable(self, shell):
        shell.meta(".load DS1 SMALL")
        output = run(shell, "SELECT COUNT(*) FROM publisher;")
        assert "(1 row)" in output


class TestObservabilityCommands:
    def _setup(self, shell):
        run(shell, "CREATE TABLE t (a INTEGER);")
        run(shell, "ALTER TABLE t ADD VALIDTIME;")
        run(shell, ".now 2010-06-01")
        run(shell, "INSERT INTO t (a) VALUES (7);")

    def test_metrics_lists_counters(self, shell):
        self._setup(shell)
        output = shell.meta(".metrics")
        assert "engine.rows_written.insert" in output

    def test_trace_toggle_and_render(self, shell):
        self._setup(shell)
        assert shell.meta(".trace on") == "tracing on"
        run(
            shell,
            "VALIDTIME [DATE '2010-06-01', DATE '2010-06-10'] SELECT a FROM t;",
        )
        output = shell.meta(".trace")
        assert "statement" in output and "stratum.transform" in output
        assert shell.meta(".trace off") == "tracing off"

    def test_trace_without_capture(self, shell):
        assert "no trace captured" in shell.meta(".trace")

    def test_explain_statement_in_shell(self, shell):
        self._setup(shell)
        output = run(
            shell,
            "EXPLAIN VALIDTIME [DATE '2010-06-01', DATE '2010-06-10']"
            " SELECT a FROM t;",
        )
        assert "semantics: sequenced valid time" in output
        assert "strategy:" in output


class TestSubcommands:
    SQL = (
        "VALIDTIME [DATE '2009-01-01', DATE '2009-03-01']"
        " SELECT i.id FROM item AS i"
    )

    def test_explain_subcommand(self, capsys):
        from repro.cli import main

        code = main(["explain", "--load", "DS1", "SMALL", self.SQL])
        assert code == 0
        out = capsys.readouterr().out
        assert "semantics: sequenced valid time" in out
        assert "transformed SQL:" in out

    def test_explain_analyze_subcommand(self, capsys):
        from repro.cli import main

        code = main(
            ["explain", "--analyze", "--strategy", "max",
             "--load", "DS1", "SMALL", self.SQL]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy: max (requested)" in out
        assert "measured:" in out and "wall time:" in out

    def test_trace_subcommand(self, capsys):
        from repro.cli import main

        code = main(["trace", "--load", "DS1", "SMALL", self.SQL])
        assert code == 0
        out = capsys.readouterr().out
        assert "statement" in out
        assert "stratum" in out

    def test_subcommand_error_exit_code(self, capsys):
        from repro.cli import main

        assert main(["explain", "SELECT FROM WHERE"]) == 1
        assert main(["trace", "SELECT a FROM nope"]) == 1
