"""End-to-end walk through the paper's running example (Figures 1-11)."""

import pytest

from repro.sqlengine.values import Date
from repro.temporal import SlicingStrategy, TemporalStratum
from repro.temporal.period import Period

from tests.conftest import GET_AUTHOR_NAME, make_bookstore

FIG2_QUERY = (
    "SELECT i.title FROM item i, item_author ia"
    " WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'"
)
FIG3_QUERY = (
    "VALIDTIME [DATE '2010-01-01', DATE '2010-12-01'] " + FIG2_QUERY
)


@pytest.fixture
def stratum() -> TemporalStratum:
    s = make_bookstore()
    s.register_routine(GET_AUTHOR_NAME)  # Figure 1
    return s


class TestFigure2Current:
    """The unmodified query keeps its current-state meaning (TUC)."""

    def test_while_ben_is_current(self, stratum):
        stratum.db.now = Date.from_ymd(2010, 4, 1)
        result = stratum.execute(FIG2_QUERY)
        assert sorted(r[0] for r in result.rows) == ["Book One", "Book Two"]

    def test_after_rename_no_results(self, stratum):
        stratum.db.now = Date.from_ymd(2010, 8, 1)
        assert stratum.execute(FIG2_QUERY).rows == []

    def test_figures_5_and_6_shapes(self, stratum):
        transformed = stratum.transform(FIG2_QUERY)
        sql = transformed.to_sql()
        assert "curr_get_author_name" in sql
        assert "author.begin_time <= CURRENT_DATE" in sql
        assert "i.begin_time <= CURRENT_DATE" in sql


class TestFigure3Sequenced:
    EXPECTED = [
        (("Book One",), Period.from_iso("2010-01-15", "2010-06-01")),
        (("Book Two",), Period.from_iso("2010-03-01", "2010-06-01")),
    ]

    def test_history_under_max(self, stratum):
        result = stratum.execute(FIG3_QUERY, strategy=SlicingStrategy.MAX)
        assert result.coalesced() == self.EXPECTED

    def test_history_under_perst(self, stratum):
        result = stratum.execute(FIG3_QUERY, strategy=SlicingStrategy.PERST)
        assert result.coalesced() == self.EXPECTED

    def test_figure_9_and_10_shapes(self, stratum):
        transformed = stratum.transform(FIG3_QUERY, SlicingStrategy.MAX)
        sql = transformed.to_sql()
        assert "max_get_author_name (aid CHAR(10), begin_time_in DATE)" in sql
        assert "max_get_author_name(ia.author_id, cp.begin_time)" in sql

    def test_figure_11_shape(self, stratum):
        transformed = stratum.transform(FIG3_QUERY, SlicingStrategy.PERST)
        sql = transformed.to_sql()
        assert "ps_get_author_name (aid CHAR(10), ps_begin DATE, ps_end DATE)" in sql
        assert "ROW(taupsm_result CHAR(50), begin_time DATE, end_time DATE) ARRAY" in sql
        assert "TABLE(ps_get_author_name(ia.author_id" in sql

    def test_figure_7_call_count_comparison(self, stratum):
        """MAX calls per constant period; PERST far fewer (Fig. 7)."""
        stats = stratum.db.stats
        stats.reset()
        stratum.execute(FIG3_QUERY, strategy=SlicingStrategy.MAX)
        max_calls = stats.routine_calls["max_get_author_name"]
        stats.reset()
        stratum.execute(FIG3_QUERY, strategy=SlicingStrategy.PERST)
        perst_calls = stats.routine_calls["ps_get_author_name"]
        assert perst_calls < max_calls


class TestNonsequencedVariant:
    def test_any_time_matching(self, stratum):
        result = stratum.execute(
            "NONSEQUENCED VALIDTIME SELECT i.title"
            " FROM item i, item_author ia, author a"
            " WHERE i.id = ia.item_id AND a.author_id = ia.author_id"
            " AND a.first_name = 'Benjamin'"
        )
        # 'Benjamin' at any time, items at (possibly different) any time
        assert sorted(set(r[0] for r in result.rows)) == ["Book One", "Book Two"]
