"""Chaos harness: seeded multi-site fault schedules over τBench.

The resilience invariant under test (DESIGN §3.7): under any armed
:class:`ChaosSchedule` a workload must either *complete* with exactly
the fault-free answer, *fail typed* (a ``SqlError`` subclass) with a
clean rollback — undo log empty, state fingerprint untouched — or,
when the schedule simulates a crash on a durable store, *recover* to
the committed-prefix fingerprint.  Never hang, never corrupt.

Knobs: ``TAUPSM_CHAOS_SEED`` rebases the seed sequence,
``TAUPSM_CHAOS_RUNS`` resizes the sweep (CI pins both).
"""

from __future__ import annotations

import os
import random
import shutil

import pytest

from repro.sqlengine.errors import QueryCancelled, SqlError
from repro.sqlengine.resilience import ChaosSchedule, verify_store
from repro.taubench import ALL_QUERIES, build_dataset
from repro.temporal.stratum import (
    SlicingStrategy,
    TemporalResult,
    TemporalStratum,
)

SEED = int(os.environ.get("TAUPSM_CHAOS_SEED", "20120401"))
RUNS = int(os.environ.get("TAUPSM_CHAOS_RUNS", "200"))
BEGIN, END = "2010-02-01", "2010-03-01"

# the never-hang backstop: generous enough that no fault-free cell on
# SMALL comes near it, so it only converts a genuine hang into a typed
# failure instead of a stuck test
BACKSTOP_SECONDS = 60.0


def normalize(result):
    """Order-independent, period-coalesced view of a query result."""
    if isinstance(result, TemporalResult):
        return sorted(result.coalesced(), key=repr)
    if isinstance(result, list):
        return [normalize(r) for r in result]
    if hasattr(result, "rows"):
        return sorted(map(tuple, result.rows), key=repr)
    return result


def fingerprint(stratum):
    """Logical state: table rows, routines, registry, clock."""
    db = stratum.db
    return {
        "tables": {
            t.name: sorted(map(tuple, t.rows), key=repr)
            for t in db.catalog.tables()
            if not t.temporary
        },
        "routines": sorted(r.name for r in db.catalog.routines()),
        "registry": sorted(i.name for i in stratum.registry.infos()),
        "now": db.now.ordinal,
    }


def _strategy_for(query, index):
    cycle = index % 3
    if cycle == 0:
        return SlicingStrategy.MAX
    if cycle == 1 and query.perst_applicable:
        return SlicingStrategy.PERST
    return SlicingStrategy.AUTO


@pytest.fixture(scope="module")
def arena():
    dataset = build_dataset("DS1", "SMALL")
    for query in ALL_QUERIES:
        query.install(dataset)
    return dataset


def test_chaos_invariant_over_query_suite(arena):
    """>= RUNS seeded schedules across the 16 queries x MAX/PERST/AUTO:
    complete with the exact rows, or fail typed leaving no trace."""
    db = arena.stratum.db
    db.resilience.statement_timeout = BACKSTOP_SECONDS
    # warm every (query, strategy) cell first: the clean pass records
    # the expected rows AND registers the derived max_*/perst_* driver
    # routines, so the baseline fingerprint below is stable
    plan = []
    clean: dict = {}
    for i in range(RUNS):
        query = ALL_QUERIES[i % len(ALL_QUERIES)]
        strategy = _strategy_for(query, i // len(ALL_QUERIES))
        sql = query.sequenced_sql(arena, BEGIN, END)
        plan.append((query, strategy, sql))
        key = (query.name, strategy.name)
        if key not in clean:
            clean[key] = normalize(arena.stratum.execute(sql, strategy))
    base = fingerprint(arena.stratum)
    outcomes = {"completed": 0, "typed": 0}
    try:
        for i, (query, strategy, sql) in enumerate(plan):
            key = (query.name, strategy.name)
            schedule = ChaosSchedule(SEED + i)
            schedule.arm(db)
            try:
                result = arena.stratum.execute(sql, strategy)
            except SqlError:
                outcomes["typed"] += 1
            else:
                outcomes["completed"] += 1
                assert normalize(result) == clean[key], schedule.describe()
            finally:
                schedule.disarm(db)
            # clean rollback, every time: no undo residue, no open marks
            assert db.txn.log == [], schedule.describe()
            assert db.txn.marks == [], schedule.describe()
            if i % 10 == 0:  # row-for-row state audit (spot-checked)
                assert fingerprint(arena.stratum) == base, schedule.describe()
    finally:
        db.resilience.disable()
    assert fingerprint(arena.stratum) == base
    # the schedule distribution must actually exercise both arms
    assert outcomes["completed"] > 0 and outcomes["typed"] > 0, outcomes


# ---------------------------------------------------------------------------
# durable chaos: crash-style faults recover to the committed prefix
# ---------------------------------------------------------------------------

DURABLE_SETUP = [
    "CREATE TABLE kv (k INTEGER, v INTEGER)",
    "INSERT INTO kv VALUES (0, 0), (1, 10), (2, 20), (3, 30)",
]


def _durable_ops(seed, count=12):
    rng = random.Random(seed)
    ops = []
    for _ in range(count):
        kind = rng.randrange(6)
        k = rng.randrange(12)
        if kind < 3:
            v = rng.randrange(100)
            ops.append(
                f"INSERT INTO kv VALUES ({k}, {v}), ({k + 20}, {v + 1})"
            )
        elif kind == 3:
            ops.append(f"UPDATE kv SET v = v + 1 WHERE k = {k}")
        elif kind == 4:
            ops.append(f"DELETE FROM kv WHERE k = {k}")
        else:
            ops.append(("checkpoint",))
    return ops


def _apply(stratum, op):
    if isinstance(op, tuple):
        if stratum.db.durability is not None:  # no-op on the shadow
            stratum.db.checkpoint()
    else:
        stratum.execute(op)


def _durable_runs():
    raw = os.environ.get("TAUPSM_CHAOS_DURABLE_RUNS")
    return int(raw) if raw else 40


def test_chaos_durable_recovers_committed_prefix(tmp_path):
    """Crash-style faults at WAL/checkpoint sites: reopening the store
    lands on the pre- or post-statement fingerprint (the commit window
    is ambiguous) and the only disk damage is a quarantineable tail."""
    crashes = completions = 0
    for i in range(_durable_runs()):
        seed = SEED ^ (i * 2654435761)
        path = tmp_path / f"store-{i}"
        live = TemporalStratum.open(path, auto_checkpoint_bytes=1 << 40)
        shadow = TemporalStratum()
        for sql in DURABLE_SETUP:
            live.execute(sql)
            shadow.execute(sql)
        schedule = ChaosSchedule(
            seed,
            durable=True,
            max_fault_at=8,  # the workload makes ~10 hits per hot site
            cancel_probability=0.2,
            max_cancel_check=40,
        )
        schedule.arm(live.db)
        crashed = False
        try:
            for op in _durable_ops(seed):
                pre = fingerprint(shadow)
                try:
                    _apply(live, op)
                except SqlError as exc:
                    if isinstance(exc, QueryCancelled):
                        continue  # rolled back in memory; op skipped
                    crashed = True  # crash-style: the process "dies"
                    break
                _apply(shadow, op)
        finally:
            schedule.disarm(live.db)

        if crashed:
            crashes += 1
            # the dying process never closes cleanly: freeze the
            # directory as-is and recover from a copy
            copy = tmp_path / f"crash-{i}"
            shutil.copytree(path, copy)
            post = fingerprint(shadow)
            _apply(shadow, op)
            allowed = (post, fingerprint(shadow))
            recovered = TemporalStratum.open(copy)
            try:
                got = fingerprint(recovered)
                assert got in allowed, schedule.describe()
                recovered.execute("INSERT INTO kv VALUES (99, 99)")
            finally:
                recovered.close(checkpoint=False)
            # committed data is never corrupt: at worst a torn tail
            # that quarantine cleans
            assert verify_store(path, quarantine=True).ok, schedule.describe()
        else:
            completions += 1
            assert fingerprint(live) == fingerprint(shadow), schedule.describe()
            live.close(checkpoint=False)
            assert verify_store(path).ok, schedule.describe()
    # the sweep must exercise both arms to mean anything
    assert crashes > 0 and completions > 0, (crashes, completions)


# ---------------------------------------------------------------------------
# the acceptance scenario: 50 ms deadline mid-MAX-loop on q2's shape
# ---------------------------------------------------------------------------


def test_deadline_cancels_mid_max_loop_and_store_verifies(tmp_path):
    """A q2-shaped sequenced query (function-in-predicate join driven
    through the per-constant-period CALL loop) with a 50 ms statement
    deadline: cancels mid-loop with SQLSTATE 57014, leaves the stratum
    usable, and the durable store verifies clean afterwards."""
    from repro.sqlengine.values import Date

    path = tmp_path / "store"
    stratum = TemporalStratum.open(path, auto_checkpoint_bytes=1 << 40)
    stratum.create_temporal_table(
        "CREATE TABLE author (author_id CHAR(10), first_name CHAR(40),"
        " begin_time DATE, end_time DATE)"
    )
    stratum.create_temporal_table(
        "CREATE TABLE item (id CHAR(10), title CHAR(100),"
        " begin_time DATE, end_time DATE)"
    )
    stratum.create_temporal_table(
        "CREATE TABLE item_author (item_id CHAR(10), author_id CHAR(10),"
        " begin_time DATE, end_time DATE)"
    )
    db = stratum.db
    base = Date.from_ymd(2010, 1, 1).ordinal
    # one author whose name changes daily: every day is its own
    # constant period, so MAX drives one CALL slice per day
    db.execute(
        "INSERT INTO author VALUES "
        + ", ".join(
            f"('a1', 'name{i}', DATE '{Date(base + i).to_iso()}',"
            f" DATE '{Date(base + i + 1).to_iso()}')"
            for i in range(400)
        )
    )
    db.execute(
        "INSERT INTO item VALUES "
        + ", ".join(
            f"('i{j}', 'Book {j}', DATE '{Date(base).to_iso()}',"
            " DATE '9999-12-31')"
            for j in range(5)
        )
    )
    db.execute(
        "INSERT INTO item_author VALUES "
        + ", ".join(
            f"('i{j}', 'a1', DATE '{Date(base).to_iso()}', DATE '9999-12-31')"
            for j in range(5)
        )
    )
    stratum.register_routine(
        """
        CREATE FUNCTION get_author_name (aid CHAR(10))
        RETURNS CHAR(40)
        READS SQL DATA
        LANGUAGE SQL
        BEGIN
          DECLARE fname CHAR(40);
          SET fname = (SELECT first_name FROM author WHERE author_id = aid);
          RETURN fname;
        END
        """
    )
    sequenced = (
        "VALIDTIME [DATE '2010-01-01', DATE '2011-02-01'] "
        "SELECT i.title FROM item i, item_author ia "
        "WHERE i.id = ia.item_id AND ia.author_id = 'a1' "
        "AND get_author_name(ia.author_id) = 'name100'"
    )
    # deterministic mid-loop cancellation first: check #150 is deep in
    # the per-period loop (the pre-loop gate takes < 10 checks, the
    # full statement thousands)
    db.resilience.cancel_at_check = 150
    with pytest.raises(QueryCancelled):
        stratum.execute(sequenced, SlicingStrategy.MAX)
    assert db.resilience.checks == 150

    # then the wall-clock shape: a 50 ms deadline on a multi-second
    # loop cancels with SQLSTATE 57014 long before completion
    db.resilience.statement_timeout = 0.050
    with pytest.raises(QueryCancelled) as excinfo:
        stratum.execute(sequenced, SlicingStrategy.MAX)
    assert excinfo.value.sqlstate == "57014"
    db.resilience.statement_timeout = None

    # the stratum stays usable: clean state, current queries answer
    assert db.txn.log == [] and db.txn.marks == []
    assert len(stratum.execute("SELECT title FROM item").rows) == 5
    stratum.close(checkpoint=False)

    report = verify_store(path)
    assert report.ok, report.render()
