"""Crash-recovery fuzzing: random workloads, random kill points.

The invariant under test is the durability contract: after a crash at
*any* byte offset in the WAL, recovery reconstructs exactly the state
produced by the longest committed prefix of the workload — never a
partial transaction, never a lost committed one.

The harness runs a seeded random workload against a durable stratum,
recording the WAL size after each statement (those are the commit
boundaries).  It then simulates crashes by truncating a copy of the
directory's WAL at each boundary — and at offsets *inside* the record
that follows, to model torn writes — reopening, and comparing a logical
fingerprint against a reference in-memory run of the same statement
prefix.

Fingerprints deliberately exclude version counters (cache keys, not
state) and table identity — only names, schemas, rows, views, routines,
registries, and the temporal clock.

Extra seeds can be swept via ``TAUPSM_CRASH_SEEDS=1,2,3`` (CI runs a
fixed matrix this way).
"""

import os
import random
import shutil

import pytest

from repro.sqlengine.values import Date
from repro.temporal.stratum import TemporalStratum

DEFAULT_SEEDS = [11, 42]


def _seeds():
    raw = os.environ.get("TAUPSM_CRASH_SEEDS")
    if not raw:
        return DEFAULT_SEEDS
    return [int(s) for s in raw.split(",") if s.strip()]


SETUP = [
    "CREATE TABLE emp (name CHAR(12), dept CHAR(8), salary INTEGER,"
    " begin_time DATE, end_time DATE)",
    "ALTER TABLE emp ADD VALIDTIME",
    "CREATE TABLE audit (note CHAR(30))",
    "CREATE TABLE payroll (dept CHAR(8), total INTEGER)",
    "INSERT INTO payroll VALUES ('sales', 0), ('eng', 0), ('ops', 0)",
    # routines registered with the stratum may only read temporal tables,
    # so the procedure mutates the non-temporal ledgers
    "CREATE PROCEDURE raise_dept (d CHAR(8), amount INTEGER)"
    " LANGUAGE SQL BEGIN"
    " UPDATE payroll SET total = total + amount WHERE dept = d;"
    " INSERT INTO audit VALUES ('raise'); END",
]

NAMES = ["ann", "bob", "cho", "dev", "eve", "fay"]
DEPTS = ["sales", "eng", "ops"]


def build_workload(seed, length=40):
    """A deterministic statement list: DML, sequenced updates, routine
    calls, clock advances, and explicit transactions (some rolled back)."""
    rng = random.Random(seed)
    ops = []
    day = 40  # ordinal offset into 2010 for clock advances
    for _ in range(length):
        kind = rng.randrange(10)
        name = rng.choice(NAMES)
        dept = rng.choice(DEPTS)
        salary = rng.randrange(30, 90) * 100
        begin = Date.from_ymd(2010, 1, 1 + rng.randrange(20))
        end = Date(begin.ordinal + 10 + rng.randrange(300))
        if kind < 4:
            # raw insert with explicit timestamps (a current INSERT via
            # the stratum would require a column list)
            ops.append((
                "raw",
                f"INSERT INTO emp VALUES ('{name}', '{dept}', {salary},"
                f" DATE '{begin.to_iso()}', DATE '{end.to_iso()}')",
            ))
        elif kind < 6:
            ops.append(
                f"VALIDTIME [DATE '{begin.to_iso()}', DATE '{end.to_iso()}']"
                f" UPDATE emp SET salary = salary + 50 WHERE name = '{name}'"
            )
        elif kind == 6:
            ops.append(f"CALL raise_dept('{dept}', {rng.randrange(1, 9)})")
        elif kind == 7:
            day += rng.randrange(1, 15)
            ops.append(("now", day))
        elif kind == 8:
            body = [
                f"INSERT INTO audit VALUES ('txn-{rng.randrange(1000)}')",
                f"DELETE FROM emp WHERE name = '{rng.choice(NAMES)}'"
                f" AND salary < {rng.randrange(30, 60) * 100}",
            ]
            outcome = "COMMIT" if rng.random() < 0.7 else "ROLLBACK"
            ops.append(("txn", body, outcome))
        else:
            ops.append(
                f"DELETE FROM audit WHERE note = 'txn-{rng.randrange(1000)}'"
            )
    return ops


def apply_op(stratum, op):
    if isinstance(op, str):
        stratum.execute(op)
    elif op[0] == "raw":
        stratum.db.execute(op[1])
    elif op[0] == "now":
        stratum.db.now = Date(Date.from_ymd(2010, 1, 1).ordinal + op[1])
    else:
        _, body, outcome = op
        stratum.db.execute("BEGIN")
        for sql in body:
            stratum.execute(sql)
        stratum.db.execute(outcome)


def fingerprint(stratum):
    """Logical state: everything durability must preserve, nothing more."""
    db = stratum.db
    tables = {}
    for table in db.catalog.tables():
        if table.temporary:
            continue
        tables[table.name] = (
            [(c.name, c.type.name) for c in table.columns],
            sorted(map(tuple, table.rows), key=repr),
        )
    return {
        "tables": tables,
        "views": sorted(db.catalog._views),
        "routines": sorted(r.name for r in db.catalog.routines()),
        "registry": sorted(
            (i.name, i.begin_column, i.end_column)
            for i in stratum.registry.infos()
        ),
        "now": db.now.ordinal,
    }


def reference_fingerprints(ops):
    """Fingerprint after each committed prefix, on a plain in-memory run."""
    stratum = TemporalStratum()
    for sql in SETUP:
        stratum.execute(sql)
    prints = [fingerprint(stratum)]
    for op in ops:
        apply_op(stratum, op)
        prints.append(fingerprint(stratum))
    return prints


@pytest.mark.parametrize("seed", _seeds())
def test_crash_at_every_commit_boundary(seed, tmp_path):
    ops = build_workload(seed)

    # durable run, recording the WAL size after setup and each statement
    live = TemporalStratum.open(
        tmp_path / "live", auto_checkpoint_bytes=1 << 40
    )
    for sql in SETUP:
        live.execute(sql)
    boundaries = [live.db.durability.wal_size()]
    for op in ops:
        apply_op(live, op)
        boundaries.append(live.db.durability.wal_size())
    live.close(checkpoint=False)

    expected = reference_fingerprints(ops)
    assert len(boundaries) == len(expected)

    wal_bytes = (tmp_path / "live" / "wal.log").read_bytes()
    rng = random.Random(seed ^ 0xC0FFEE)
    # sample kill points (every boundary on short runs is fine, but keep
    # the sweep bounded); always include first, last, and a torn tail
    indexes = sorted(
        set([0, len(boundaries) - 1])
        | {rng.randrange(len(boundaries)) for _ in range(12)}
    )
    crash_dir = tmp_path / "crash"
    for index in indexes:
        offset = boundaries[index]
        for torn in (0, 1):
            cut = offset
            if torn:
                nxt = next(
                    (b for b in boundaries if b > offset), len(wal_bytes)
                )
                if nxt <= offset + 1:
                    continue  # no following record to tear
                cut = offset + 1 + rng.randrange(nxt - offset - 1)
            if crash_dir.exists():
                shutil.rmtree(crash_dir)
            shutil.copytree(tmp_path / "live", crash_dir)
            with open(crash_dir / "wal.log", "r+b") as handle:
                handle.truncate(cut)
            recovered = TemporalStratum.open(crash_dir)
            try:
                got = fingerprint(recovered)
                assert got == expected[index], (
                    f"seed {seed}: crash at boundary {index}"
                    f" (offset {cut}, torn={torn}) diverged"
                )
                # a recovered store must stay usable and durable
                recovered.execute("INSERT INTO audit VALUES ('post')")
            finally:
                recovered.close(checkpoint=False)


@pytest.mark.parametrize("seed", _seeds()[:1])
def test_crash_with_flipped_tail_byte(seed, tmp_path):
    """Bit rot in the final record truncates to the committed prefix."""
    ops = build_workload(seed, length=12)
    live = TemporalStratum.open(tmp_path / "live")
    for sql in SETUP:
        live.execute(sql)
    boundaries = [live.db.durability.wal_size()]
    for op in ops:
        apply_op(live, op)
        boundaries.append(live.db.durability.wal_size())
    live.close(checkpoint=False)

    expected = reference_fingerprints(ops)
    raw = bytearray((tmp_path / "live" / "wal.log").read_bytes())
    # flip a byte inside the final record's payload
    last_start = boundaries[-2]
    raw[last_start + 9] ^= 0xFF
    (tmp_path / "live" / "wal.log").write_bytes(bytes(raw))
    recovered = TemporalStratum.open(tmp_path / "live")
    try:
        assert fingerprint(recovered) == expected[-2]
    finally:
        recovered.close(checkpoint=False)


def test_recovery_after_checkpoint_mid_workload(tmp_path):
    """Crash after a checkpoint: snapshot + WAL suffix compose."""
    ops = build_workload(7, length=24)
    live = TemporalStratum.open(tmp_path / "live")
    for sql in SETUP:
        live.execute(sql)
    for op in ops[:12]:
        apply_op(live, op)
    live.checkpoint()
    for op in ops[12:]:
        apply_op(live, op)
    live.close(checkpoint=False)

    recovered = TemporalStratum.open(tmp_path / "live")
    try:
        assert fingerprint(recovered) == reference_fingerprints(ops)[-1]
    finally:
        recovered.close(checkpoint=False)
