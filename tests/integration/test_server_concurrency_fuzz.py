"""Concurrency differential fuzz: every wire read is some serial state.

Eight reader clients hammer the server with the sixteen τPSM queries
(under MAX, PERST and AUTO) while a writer client commits a scripted
sequence of sequenced updates, each in its own transaction.  Every
response carries the snapshot csn the statement read through; the
writer records the csn of each of its commits, so each observation maps
to exactly one prefix of the writer's script.  A serial oracle then
replays the script on a fresh copy of the (seeded, deterministic)
dataset and recomputes each observed (state, query, strategy)
fingerprint — the concurrent result must byte-match the serial one.
The store is durable; after the drain the WAL chain must scrub clean.
"""

import asyncio

from repro.server import ReproClient, ReproServer, ServerError
from repro.taubench import ALL_QUERIES, build_dataset
from repro.taubench.io import copy_dataset_into
from repro.temporal import SlicingStrategy, TemporalStratum

READERS = 8
ROUNDS = 2

STRATEGY_CYCLE = ("max", "perst", "auto")
BEGIN_ISO, END_ISO = "2010-02-01", "2010-03-01"


def writer_steps(dataset):
    """The scripted mutation sequence: each step is one transaction."""
    item = dataset.probe_item_id
    author = dataset.probe_author_id
    return [
        f"VALIDTIME [DATE '2010-02-01', DATE '2010-02-15']"
        f" UPDATE item SET price = price * 1.05 WHERE id = '{item}'",
        f"VALIDTIME [DATE '2010-02-10', DATE '2010-03-01']"
        f" UPDATE author SET country = 'Atlantis'"
        f" WHERE author_id = '{author}'",
        f"VALIDTIME [DATE '2010-02-05', DATE '2010-02-20']"
        f" DELETE FROM related_items WHERE item_id = '{item}'",
        f"VALIDTIME [DATE '2010-02-12', DATE '2010-02-25']"
        f" UPDATE item SET number_of_pages = number_of_pages + 11"
        f" WHERE id = '{item}'",
    ]


def reader_jobs(dataset):
    """(query name, strategy, sql) triples, two queries per reader."""
    jobs = [[] for _ in range(READERS)]
    for i, query in enumerate(ALL_QUERIES):
        strategy = STRATEGY_CYCLE[i % len(STRATEGY_CYCLE)]
        if strategy == "perst" and not query.perst_applicable:
            strategy = "max"
        sql = query.sequenced_sql(dataset, BEGIN_ISO, END_ISO)
        jobs[i % READERS].append((query.name, strategy, sql))
    return jobs


def warm_transforms(stratum, dataset):
    """Run every query once per resolved strategy so the fleet never
    installs a transform routine mid-flight (a fresh install claims the
    schema for writing, which would make a plain read eligible for a
    40001 against the writer's open transaction)."""
    for query in ALL_QUERIES:
        sql = query.sequenced_sql(dataset, BEGIN_ISO, END_ISO)
        stratum.execute(sql, strategy=SlicingStrategy.MAX)
        if query.perst_applicable:
            stratum.execute(sql, strategy=SlicingStrategy.PERST)


def fingerprint(result):
    """Rows exactly as delivered — works for engine results (ResultSet /
    TemporalResult) and wire results (ClientResult) alike."""
    if isinstance(result, list):
        return [fingerprint(r) for r in result]
    if hasattr(result, "columns"):
        return (list(result.columns), [list(row) for row in result.rows])
    return result


async def run_fleet(stratum, dataset):
    server = ReproServer(stratum)
    host, port = await server.start()
    steps = writer_steps(dataset)
    step_csns = []
    observations = []

    async def writer():
        client = await ReproClient.connect(host, port)
        for sql in steps:
            while True:  # the canonical 40001 retry loop
                try:
                    await client.execute("BEGIN")
                    await client.execute(sql)
                    await client.execute("COMMIT")
                    break
                except ServerError as exc:
                    if exc.sqlstate != "40001":
                        raise
                    try:
                        await client.execute("ROLLBACK")
                    except ServerError:
                        pass
                    await asyncio.sleep(0.01)
            step_csns.append(client.last_snapshot)
            await asyncio.sleep(0.05)  # let readers interleave
        await client.close()

    async def reader(jobs):
        client = await ReproClient.connect(host, port)
        for _ in range(ROUNDS):
            for name, strategy, sql in jobs:
                await client.set_strategy(strategy)
                result = await client.execute(sql)
                observations.append(
                    (client.last_snapshot, name, strategy, fingerprint(result))
                )
        await client.close()

    await asyncio.gather(
        writer(), *[reader(jobs) for jobs in reader_jobs(dataset)]
    )
    await server.shutdown()
    return steps, step_csns, observations


def test_concurrent_readers_match_some_serial_prefix(tmp_path):
    dataset = build_dataset("DS1", "SMALL")
    stratum = TemporalStratum.open(tmp_path / "store")
    dataset = copy_dataset_into(stratum, dataset)
    for query in ALL_QUERIES:
        query.install(dataset)
    warm_transforms(stratum, dataset)
    now_iso = stratum.db.now.to_iso()

    steps, step_csns, observations = asyncio.run(run_fleet(stratum, dataset))

    assert len(step_csns) == len(steps)
    assert sorted(step_csns) == step_csns
    assert len(observations) == 16 * ROUNDS
    # the fleet actually interleaved: not every read saw the final state
    states_seen = {
        sum(1 for csn in step_csns if csn <= snapshot)
        for snapshot, _, _, _ in observations
    }
    assert len(states_seen) > 1, "no interleaving observed"

    # serial oracle: replay the script on a fresh copy of the seeded
    # dataset, fingerprinting each observed combination per state
    serial = build_dataset("DS1", "SMALL")
    for query in ALL_QUERIES:
        query.install(serial)
    serial.stratum.db.now = stratum.db.now.__class__.from_iso(now_iso)
    by_state = {}
    for snapshot, name, strategy, fp in observations:
        state = sum(1 for csn in step_csns if csn <= snapshot)
        by_state.setdefault(state, []).append((name, strategy, fp))
    sql_by_name = {
        (q.name, s): q.sequenced_sql(serial, BEGIN_ISO, END_ISO)
        for q in ALL_QUERIES
        for s in STRATEGY_CYCLE
    }
    mismatches = []
    applied = 0
    for state in sorted(by_state):
        while applied < state:
            serial.stratum.execute(steps[applied])
            applied += 1
        expected = {}
        for name, strategy, fp in by_state[state]:
            key = (name, strategy)
            if key not in expected:
                expected[key] = fingerprint(
                    serial.stratum.execute(
                        sql_by_name[key], strategy=SlicingStrategy(strategy)
                    )
                )
            if fp != expected[key]:
                mismatches.append((state, name, strategy))
    assert not mismatches, mismatches

    # and the durable store survived the concurrency: clean WAL chain
    report = stratum.db.verify()
    assert report.ok, report.problems
    stratum.close()
