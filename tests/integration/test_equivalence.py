"""§VII-B: maximal and per-statement slicing are snapshot-equivalent.

Also checks the third leg of the paper's validation: the sequenced
result equals the union of slices produced by the nontemporal variant
(which is what commutativity samples; here we assert MAX ≡ PERST over a
longer one-month context and on the hot-spot dataset DS2).
"""

import pytest

from repro.taubench import ALL_QUERIES, build_dataset
from repro.temporal.period import Period
from repro.temporal.validate import check_strategy_equivalence

BEGIN, END = "2010-02-01", "2010-03-01"
CONTEXT = Period.from_iso(BEGIN, END)

APPLICABLE = [q for q in ALL_QUERIES if q.perst_applicable]


@pytest.mark.parametrize("query", APPLICABLE, ids=lambda q: q.name)
def test_strategies_agree_ds1(query, small_dataset):
    query.install(small_dataset)
    sequenced = query.sequenced_sql(small_dataset, BEGIN, END)
    ok, message = check_strategy_equivalence(
        small_dataset.stratum, sequenced, CONTEXT
    )
    assert ok, f"{query.name}: {message}"


@pytest.fixture(scope="module")
def ds2_dataset():
    return build_dataset("DS2", "SMALL")


@pytest.mark.parametrize(
    "query",
    [q for q in APPLICABLE if q.name in ("q2", "q5", "q7", "q10", "q19")],
    ids=lambda q: q.name,
)
def test_strategies_agree_on_hot_spot_data(query, ds2_dataset):
    query.install(ds2_dataset)
    sequenced = query.sequenced_sql(ds2_dataset, BEGIN, END)
    ok, message = check_strategy_equivalence(
        ds2_dataset.stratum, sequenced, CONTEXT
    )
    assert ok, f"{query.name} on DS2: {message}"
