"""Differential replication fuzzing: chaotic links, exact convergence.

Each seeded schedule runs the crash-fuzz workload on a durable primary,
then ships the primary's WAL to a real :class:`StandbyApplier` through
a :class:`ReplicationChaos` link filter (torn, duplicated, stalled, and
reordered deliveries), mimicking the :class:`StandbyManager` delivery
loop byte for byte — but in-process, so a hundred schedules stay fast.

The oracle is *serial replay at the reported csn*: a copy of the
primary's store recovered with ``replay_cap = applied_csn`` must have
identical per-table fingerprints, and a panel of queries must return
byte-identical results on both sides.  About half the schedules kill
the primary mid-stream and promote the standby, which must then accept
writes on a bumped generation.  Full-stream runs are additionally
checked against an independent in-memory reference run.

``TAUPSM_REPL_FUZZ_RUNS`` overrides the schedule count (CI sweeps 100+).
"""

import os
import shutil

import pytest

from repro.server.replication import (
    StandbyApplier,
    fingerprint_divergence,
    store_fingerprints,
)
from repro.sqlengine.errors import ReplicationError
from repro.sqlengine.resilience import ReplicationChaos
from repro.temporal.stratum import TemporalStratum
from tests.integration.test_crash_recovery_fuzz import (
    SETUP,
    apply_op,
    build_workload,
    fingerprint,
    reference_fingerprints,
)

RUNS = int(os.environ.get("TAUPSM_REPL_FUZZ_RUNS", "100"))

QUERY_PANEL = (
    "SELECT name, dept, salary FROM emp",
    "VALIDTIME SELECT name, salary FROM emp",
    "SELECT dept, total FROM payroll",
    "SELECT COUNT(*) FROM audit",
)


def _query_bytes(stratum, sql):
    result = stratum.execute(sql)
    rows = sorted(map(repr, result.rows))
    return repr((result.columns, rows)).encode("utf-8")


def ship_with_chaos(wal_bytes, applier, chaos, chunk_size):
    """The StandbyManager delivery loop, minus the sockets.

    Chunks are cut from the primary's WAL at ``applied_offset + tail``
    (so commit groups larger than one chunk accumulate), pushed through
    the chaos filter, and integrated exactly like
    ``StandbyManager._deliver`` — duplicates trimmed, gaps treated as a
    recoverable error that re-requests from the applied offset.
    Returns the number of gap recoveries.  Stops early when the chaos
    schedule says the primary dies.
    """
    tail = b""
    gaps = 0
    for _ in range(100_000):
        if chaos.primary_should_die:
            break
        start = applier.applied_offset + len(tail)
        if start >= len(wal_bytes):
            break
        chunk = wal_bytes[start:start + chunk_size]
        for off, piece in chaos(start, chunk):
            buffered_end = applier.applied_offset + len(tail)
            if off > buffered_end:
                # gap: drop the buffer and re-request, like a reconnect
                tail = b""
                gaps += 1
                break
            skip = buffered_end - off
            if skip >= len(piece):
                continue  # duplicate of bytes already buffered/applied
            tail += piece[skip:]
            base = applier.applied_offset
            if applier.feed(base, tail):
                tail = tail[applier.applied_offset - base:]
    else:
        raise AssertionError(f"no progress after 100k rounds: {chaos.describe()}")
    return gaps


def _seed_list():
    return list(range(1, RUNS + 1))


@pytest.mark.parametrize("seed", _seed_list())
def test_standby_matches_serial_replay_under_link_chaos(seed, tmp_path):
    ops = build_workload(seed, length=14)
    kill = seed % 2 == 0  # half the schedules lose the primary mid-stream
    chaos = ReplicationChaos(
        seed,
        perturb_probability=0.5,
        kill_primary_after=(6 + seed % 13) if kill else None,
    )

    # the primary's run (no auto-checkpoint: generation stays 0)
    primary = TemporalStratum.open(
        tmp_path / "p", auto_checkpoint_bytes=1 << 40
    )
    for sql in SETUP:
        primary.execute(sql)
    for op in ops:
        apply_op(primary, op)
    primary_seq = primary.db.durability.txn_counter
    primary.close(checkpoint=False)
    wal_bytes = (tmp_path / "p" / "wal.log").read_bytes()

    # the standby: a fresh gen-0 store fed through the chaotic link
    standby = TemporalStratum.open(tmp_path / "s")
    applier = StandbyApplier(standby)
    applier.enter_replica_mode()
    chunk_size = 192 + (seed * 97) % 2048  # groups often span chunks
    ship_with_chaos(wal_bytes, applier, chaos, chunk_size)
    applied_csn = applier.applied_csn
    assert not applier.poisoned, chaos.describe()
    if not kill:
        assert applied_csn == primary_seq, chaos.describe()

    # oracle: serial replay of the primary's own store, capped at the
    # csn the standby reports
    replay_dir = tmp_path / "replay"
    shutil.copytree(tmp_path / "p", replay_dir)
    replay = TemporalStratum.open(replay_dir, replay_cap=applied_csn)
    try:
        divergence = fingerprint_divergence(
            store_fingerprints(standby.db, standby),
            store_fingerprints(replay.db, replay),
        )
        assert divergence == [], f"{chaos.describe()}: {divergence}"
        for sql in QUERY_PANEL:
            assert _query_bytes(standby, sql) == _query_bytes(replay, sql), (
                f"{chaos.describe()}: {sql!r} diverged at csn {applied_csn}"
            )
        if not kill:
            # full catch-up must also equal an independent in-memory
            # run of the same statements
            assert fingerprint(standby) == reference_fingerprints(ops)[-1]
    finally:
        replay.close(checkpoint=False)

    if kill:
        # failover: promote, bump the generation, accept writes
        generation = applier.promote()
        assert generation == 1
        assert not standby.db.mvcc.read_only
        standby.execute("INSERT INTO audit VALUES ('post-promote')")
        count = standby.execute(
            "SELECT COUNT(*) FROM audit WHERE note = 'post-promote'"
        )
        assert count.rows[0][0] == 1
    standby.close(checkpoint=False)


def test_duplicate_and_stale_batches_never_double_apply(tmp_path):
    """Deterministic spot-check: every batch delivered three times (one
    stale replay from offset zero each round) applies exactly once."""
    ops = build_workload(3, length=10)
    primary = TemporalStratum.open(
        tmp_path / "p", auto_checkpoint_bytes=1 << 40
    )
    for sql in SETUP:
        primary.execute(sql)
    for op in ops:
        apply_op(primary, op)
    primary.close(checkpoint=False)
    wal_bytes = (tmp_path / "p" / "wal.log").read_bytes()

    standby = TemporalStratum.open(tmp_path / "s")
    applier = StandbyApplier(standby)
    applier.enter_replica_mode()
    step = 777
    for start in range(0, len(wal_bytes), step):
        chunk = wal_bytes[start:start + min(step, len(wal_bytes) - start)]
        fed = wal_bytes[:start + len(chunk)]
        applier.feed(0, fed)          # stale full replay
        base = applier.applied_offset
        if base <= start:
            applier.feed(base, wal_bytes[base:start + len(chunk)])
        applier.feed(0, fed)          # and again
    assert applier.applied_offset == len(wal_bytes)
    assert fingerprint(standby) == reference_fingerprints(ops)[-1]
    standby.close(checkpoint=False)


def test_replication_chaos_is_deterministic():
    runs = []
    for _ in range(2):
        chaos = ReplicationChaos(1234, perturb_probability=0.9)
        deliveries = [chaos(i * 10, bytes(10)) for i in range(50)]
        runs.append((chaos.actions, [
            [(off, len(piece)) for off, piece in batch]
            for batch in deliveries
        ]))
    assert runs[0] == runs[1]
    assert set(runs[0][0]) > {"pass"}  # p=0.9 actually perturbs


def test_gap_raises_recoverable_error_and_resume_heals(tmp_path):
    primary = TemporalStratum.open(
        tmp_path / "p", auto_checkpoint_bytes=1 << 40
    )
    for sql in SETUP:
        primary.execute(sql)
    primary.close(checkpoint=False)
    wal_bytes = (tmp_path / "p" / "wal.log").read_bytes()

    standby = TemporalStratum.open(tmp_path / "s")
    applier = StandbyApplier(standby)
    applier.enter_replica_mode()
    with pytest.raises(ReplicationError):
        applier.feed(applier.applied_offset + 64, wal_bytes[64:])
    assert not applier.poisoned  # a gap is recoverable, not poison
    applier.feed(applier.applied_offset, wal_bytes[applier.applied_offset:])
    assert applier.applied_offset == len(wal_bytes)
    standby.close(checkpoint=False)
