"""§VII-B correctness: commutativity over the whole τPSM suite.

For every query and both slicing strategies, the sequenced result
timesliced at any granule must equal the conventional query evaluated on
the database's timeslice at that granule — the paper's validation
methodology, run on DS1-SMALL with a two-week context.
"""

import pytest

from repro.taubench import ALL_QUERIES
from repro.temporal import SlicingStrategy
from repro.temporal.period import Period
from repro.temporal.validate import (
    check_call_commutativity,
    check_commutativity,
)

BEGIN, END = "2010-02-10", "2010-02-24"
CONTEXT = Period.from_iso(BEGIN, END)
CALL_QUERIES = {"q9", "q11"}


def _cases():
    for query in ALL_QUERIES:
        for strategy in (SlicingStrategy.MAX, SlicingStrategy.PERST):
            if strategy is SlicingStrategy.PERST and not query.perst_applicable:
                continue
            yield pytest.param(query, strategy, id=f"{query.name}-{strategy.value}")


@pytest.mark.parametrize("query,strategy", list(_cases()))
def test_commutativity(query, strategy, small_dataset):
    query.install(small_dataset)
    sequenced = query.sequenced_sql(small_dataset, BEGIN, END)
    conventional = query.conventional_sql(small_dataset)
    checker = (
        check_call_commutativity if query.name in CALL_QUERIES else check_commutativity
    )
    ok, message = checker(
        small_dataset.stratum,
        sequenced,
        conventional,
        CONTEXT,
        strategy=strategy,
        sample_every=2,
    )
    assert ok, f"{query.name} under {strategy.value}: {message}"
