"""Differential fuzz: vectorized filtering ≡ the interpreted row path.

The column-batch kernels are a pure evaluation strategy, so disabling
them (``db.vectorized_filtering_enabled``) must never change a result —
raw rows, order and duplicates included.  Mirrors the interval-index
differential: Hypothesis version histories plus the full 16-query τPSM
suite, each under MAX, PERST and AUTO.

The second half fuzzes durability against the columnar snapshot/WAL
encoding: a checkpoint mid-workload writes transposed ``cols`` payloads,
and crashes at every post-checkpoint commit boundary must still recover
the reference state.
"""

import json
import random
import shutil

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sqlengine.values import Date
from repro.taubench import ALL_QUERIES
from repro.temporal import SlicingStrategy
from repro.temporal.stratum import TemporalStratum

from tests.integration.test_crash_recovery_fuzz import (
    SETUP,
    apply_op,
    build_workload,
    fingerprint,
    reference_fingerprints,
)
from tests.integration.test_fuzz_sequenced import (
    CONTEXT,
    FN_QUERY,
    QUERIES,
    build_stratum,
    versions,
)
from tests.integration.test_interval_index_fuzz import STRATEGIES, raw

BEGIN, END = "2010-02-01", "2010-03-01"


def vectorized_vs_row(stratum, sequenced, strategy):
    db = stratum.db
    assert db.vectorized_filtering_enabled
    vectorized = raw(stratum.execute(sequenced, strategy=strategy))
    db.vectorized_filtering_enabled = False
    try:
        fallback = raw(stratum.execute(sequenced, strategy=strategy))
    finally:
        db.vectorized_filtering_enabled = True
    return vectorized, fallback


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(fact=versions, dim=versions, query_index=st.integers(0, len(QUERIES) - 1))
def test_random_histories_vectorized_equals_row(fact, dim, query_index):
    stratum = build_stratum(fact, dim)
    sequenced = (
        f"VALIDTIME [DATE '{Date(CONTEXT.begin).to_iso()}',"
        f" DATE '{Date(CONTEXT.end).to_iso()}'] " + QUERIES[query_index]
    )
    for strategy in STRATEGIES:
        vectorized, fallback = vectorized_vs_row(stratum, sequenced, strategy)
        assert vectorized == fallback, strategy.value


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(fact=versions, dim=versions)
def test_random_histories_routine_path(fact, dim):
    """Kernels under routine bodies (MAX per-period loop and PERST row
    loop) agree with the interpreted path too."""
    stratum = build_stratum(fact, dim)
    sequenced = (
        f"VALIDTIME [DATE '{Date(CONTEXT.begin).to_iso()}',"
        f" DATE '{Date(CONTEXT.end).to_iso()}'] " + FN_QUERY
    )
    for strategy in STRATEGIES:
        vectorized, fallback = vectorized_vs_row(stratum, sequenced, strategy)
        assert vectorized == fallback, strategy.value


@pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
def test_taubench_vectorized_equals_row(query, small_dataset):
    query.install(small_dataset)
    sequenced = query.sequenced_sql(small_dataset, BEGIN, END)
    stratum = small_dataset.stratum
    for strategy in STRATEGIES:
        if strategy is SlicingStrategy.PERST and not query.perst_applicable:
            continue
        vectorized, fallback = vectorized_vs_row(stratum, sequenced, strategy)
        assert vectorized == fallback, f"{query.name}/{strategy.value}"


def test_taubench_suite_exercises_the_kernels(small_dataset):
    """Sanity for the differential above: the enabled runs actually
    evaluate batches over the column store.  The PERST algebraic
    fragment substitutes literal context bounds, so its overlap
    conjuncts compile to date kernels (the MAX stab predicates are
    cp-correlated and stay on the interpreted path)."""
    db = small_dataset.stratum.db
    before = db.obs.value("engine.vectorized_batches")
    # switch the interval index off so the pruning is attributable to
    # the kernels alone (with it on the batch sees pre-pruned positions)
    db.interval_indexing_enabled = False
    try:
        small_dataset.stratum.execute(
            f"VALIDTIME [DATE '{BEGIN}', DATE '{END}']"
            " SELECT i.id, i.title FROM item i",
            strategy=SlicingStrategy.PERST,
        )
    finally:
        db.interval_indexing_enabled = True
    assert db.obs.value("engine.vectorized_batches") > before
    assert db.obs.value("engine.vectorized_rows_pruned") > 0


# ---------------------------------------------------------------------------
# crash recovery against columnar checkpoints
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [3, 19])
def test_columnar_checkpoint_crash_boundaries(seed, tmp_path):
    """Crash at every commit boundary after a columnar checkpoint:
    snapshot ``cols`` payload + columnar WAL suffix must compose back
    to the reference state."""
    ops = build_workload(seed, length=24)
    live = TemporalStratum.open(
        tmp_path / "live", auto_checkpoint_bytes=1 << 40
    )
    for sql in SETUP:
        live.execute(sql)
    for op in ops[:12]:
        apply_op(live, op)
    live.checkpoint()
    boundaries = [live.db.durability.wal_size()]
    for op in ops[12:]:
        apply_op(live, op)
        boundaries.append(live.db.durability.wal_size())
    live.close(checkpoint=False)

    # the snapshot on disk really is transposed (no legacy row lists)
    snapshot_raw = (tmp_path / "live" / "snapshot.json").read_bytes()
    payload = json.loads(snapshot_raw.split(b"\n", 1)[1])
    assert payload["tables"], "workload should have left tables behind"
    for spec in payload["tables"]:
        assert "cols" in spec and "rows" not in spec
        assert spec["cols"]["n"] == (
            len(spec["cols"]["cols"][0]["v"]) if spec["cols"]["cols"] else 0
        ) or spec["cols"]["n"] == 0

    expected = reference_fingerprints(ops)[12:]
    assert len(boundaries) == len(expected)

    rng = random.Random(seed ^ 0xBEEF)
    indexes = sorted(
        set([0, len(boundaries) - 1])
        | {rng.randrange(len(boundaries)) for _ in range(8)}
    )
    crash_dir = tmp_path / "crash"
    for index in indexes:
        if crash_dir.exists():
            shutil.rmtree(crash_dir)
        shutil.copytree(tmp_path / "live", crash_dir)
        with open(crash_dir / "wal.log", "r+b") as handle:
            handle.truncate(boundaries[index])
        recovered = TemporalStratum.open(crash_dir)
        try:
            got = fingerprint(recovered)
            assert got == expected[index], (
                f"seed {seed}: crash at post-checkpoint boundary {index}"
                " diverged"
            )
            # a recovered store keeps a working vectorized path
            recovered.db.execute(
                "SELECT name FROM emp WHERE salary > 4000"
            )
        finally:
            recovered.close(checkpoint=False)
