"""Differential fuzzing of SEQ-SET against MAX.

SEQ-SET's contract is stronger than snapshot equivalence: on every
covered statement it must reproduce MAX's *raw* rows — order,
duplicates, fragmentation, column names — and on every uncovered
statement it must fall back to MAX transparently (recording why).
Three generators drive this:

* Hypothesis version histories × the routine-free query family
  (selection, join, self-join, DISTINCT) — raw-row identity;
* the routine-bearing query — transparent fallback with identical
  results;
* the full 16-query τPSM suite — every query invokes a routine, so all
  of them must take the fallback and still match MAX exactly.

Golden EXPLAIN snapshots pin the plan shape (``TemporalAlign`` /
``IntervalJoin`` nodes) and the fallback decision line.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sqlengine.values import Date
from repro.taubench import ALL_QUERIES
from repro.temporal import SlicingStrategy

from tests.conftest import GET_AUTHOR_NAME, make_bookstore
from tests.integration.test_fuzz_sequenced import (
    CONTEXT,
    FN_QUERY,
    QUERIES,
    build_stratum,
    versions,
)
from tests.obs.test_explain import check_golden

BEGIN, END = "2010-02-01", "2010-03-01"


def raw(result):
    """Rows exactly as delivered: order and duplicates preserved."""
    if isinstance(result, list):  # CALL loops yield one result per slice
        return [raw(r) for r in result]
    return (list(result.columns), [list(row) for row in result.rows])


def sequenced(query):
    return (
        f"VALIDTIME [DATE '{Date(CONTEXT.begin).to_iso()}',"
        f" DATE '{Date(CONTEXT.end).to_iso()}'] " + query
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(fact=versions, dim=versions, query_index=st.integers(0, len(QUERIES) - 1))
def test_random_histories_seqset_equals_max_raw(fact, dim, query_index):
    """Covered shapes: the set-oriented pass is row-identical to MAX."""
    stratum = build_stratum(fact, dim)
    sql = sequenced(QUERIES[query_index])
    reference = raw(stratum.execute(sql, strategy=SlicingStrategy.MAX))
    result = raw(stratum.execute(sql, strategy=SlicingStrategy.SEQSET))
    assert stratum.last_strategy is SlicingStrategy.SEQSET
    assert stratum.last_fallback is None
    assert result == reference, QUERIES[query_index]
    # AUTO routes the same routine-free statements through rule (s)
    auto = raw(stratum.execute(sql, strategy=SlicingStrategy.AUTO))
    assert stratum.last_strategy is SlicingStrategy.SEQSET
    assert auto == reference


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(fact=versions, dim=versions)
def test_random_histories_routine_query_falls_back(fact, dim):
    """Uncovered shapes: requesting SEQ-SET transparently re-runs under
    MAX, records the reason, and the rows are exactly MAX's."""
    stratum = build_stratum(fact, dim)
    sql = sequenced(FN_QUERY)
    reference = raw(stratum.execute(sql, strategy=SlicingStrategy.MAX))
    result = raw(stratum.execute(sql, strategy=SlicingStrategy.SEQSET))
    assert result == reference
    assert stratum.last_strategy is SlicingStrategy.MAX
    assert stratum.last_fallback is not None
    assert "value_of" in stratum.last_fallback


@pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
def test_taubench_seqset_equals_max(query, small_dataset):
    """Every τPSM query invokes a routine, so under SEQ-SET all sixteen
    must take the MAX fallback — and stay row-identical to MAX."""
    query.install(small_dataset)
    sql = query.sequenced_sql(small_dataset, BEGIN, END)
    stratum = small_dataset.stratum
    reference = raw(stratum.execute(sql, strategy=SlicingStrategy.MAX))
    result = raw(stratum.execute(sql, strategy=SlicingStrategy.SEQSET))
    assert result == reference, query.name
    assert stratum.last_strategy is SlicingStrategy.MAX
    assert stratum.last_fallback is not None


class TestGoldenSeqSetExplain:
    """Pin the EXPLAIN renderings: the set-oriented plan tree and the
    compile-time fallback decision."""

    @pytest.fixture
    def stratum(self):
        s = make_bookstore()
        s.register_routine(GET_AUTHOR_NAME)
        return s

    def test_plan_tree(self, stratum):
        result = stratum.execute(
            "EXPLAIN VALIDTIME [DATE '2010-02-01', DATE '2010-03-01']"
            " SELECT a.first_name, i.price FROM author a, item i"
            " WHERE a.author_id = i.author_id AND i.price > 10.0",
            strategy=SlicingStrategy.SEQSET,
        )
        text = result.text()
        assert "IntervalJoin" in text
        assert "TemporalAlign" in text
        check_golden("seqset_join_plan", text)

    def test_auto_rule_s(self, stratum):
        result = stratum.execute(
            "EXPLAIN VALIDTIME [DATE '2010-02-01', DATE '2010-03-01']"
            " SELECT first_name FROM author WHERE author_id = 'a1'"
        )
        text = result.text()
        assert "rule s" in text
        check_golden("seqset_auto_rule_s", text)

    def test_fallback_decision(self, stratum):
        result = stratum.execute(
            "EXPLAIN VALIDTIME [DATE '2010-02-01', DATE '2010-03-01']"
            " SELECT get_author_name('a1') AS name FROM author",
            strategy=SlicingStrategy.SEQSET,
        )
        text = result.text()
        assert "seqset: fallback to max" in text
        check_golden("seqset_fallback", text)
