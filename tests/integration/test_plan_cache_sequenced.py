"""Acceptance: sequenced MAX over a multi-period context compiles each
distinct statement once and reuses the plan on every further period.

The MAX driver invokes the transformed procedure once per constant
period; the procedure body's statements are the same AST objects on
every invocation, so the engine's plan cache must hit on every period
after the first: ``plan_cache_hits >= periods - 1``.
"""

from repro.temporal import SlicingStrategy, TemporalStratum
from repro.temporal.stratum import MAX_CP_TABLE

REPORT_PRICES = """
CREATE PROCEDURE report_prices ()
LANGUAGE SQL
BEGIN
  SELECT id, price FROM item WHERE price > 10.0;
END
"""


def make_stratum() -> TemporalStratum:
    stratum = TemporalStratum()
    stratum.create_temporal_table(
        "CREATE TABLE item (id CHAR(10), title CHAR(100), price FLOAT,"
        " begin_time DATE, end_time DATE)"
    )
    db = stratum.db
    # several change points inside the context → several constant periods
    for values in [
        "('i1', 'Book One', 25.0, DATE '2010-01-15', DATE '2010-05-01')",
        "('i1', 'Book One', 30.0, DATE '2010-05-01', DATE '9999-12-31')",
        "('i2', 'Book Two', 80.0, DATE '2010-03-01', DATE '2010-09-01')",
        "('i3', 'Book Three', 15.0, DATE '2010-02-01', DATE '2010-07-01')",
    ]:
        db.execute(f"INSERT INTO item VALUES {values}")
    stratum.register_routine(REPORT_PRICES)
    return stratum


def test_max_call_hits_plan_cache_once_per_period():
    stratum = make_stratum()
    db = stratum.db
    before = db.stats.snapshot()
    results = stratum.execute(
        "VALIDTIME [DATE '2010-01-01', DATE '2010-12-01'] CALL report_prices()",
        strategy=SlicingStrategy.MAX,
    )
    after = db.stats.snapshot()
    periods = len(db.catalog.get_table(MAX_CP_TABLE).rows)
    assert periods >= 4  # genuinely multi-period
    hits = after["plan_cache_hits"] - before["plan_cache_hits"]
    assert hits >= periods - 1
    # the result itself is right: one result set, price history stamped
    assert len(results) == 1
    coalesced = results[0].coalesced()
    assert (("i2", 80.0),) in {(values,) for values, _ in coalesced}

    # a second execution reuses the cached transform AND the cached
    # plans: every period is now a hit and nothing recompiles
    mid = db.stats.snapshot()
    stratum.execute(
        "VALIDTIME [DATE '2010-01-01', DATE '2010-12-01'] CALL report_prices()",
        strategy=SlicingStrategy.MAX,
    )
    end = db.stats.snapshot()
    assert end["plans_compiled"] == mid["plans_compiled"]
    assert end["plan_cache_hits"] - mid["plan_cache_hits"] >= periods
    assert end["transform_cache_hits"] == mid["transform_cache_hits"] + 1


def test_max_select_hits_plan_cache_across_executions():
    stratum = make_stratum()
    db = stratum.db
    query = (
        "VALIDTIME [DATE '2010-01-01', DATE '2010-12-01']"
        " SELECT id, price FROM item WHERE price > 10.0"
    )
    first = stratum.execute(query, strategy=SlicingStrategy.MAX)
    mid = db.stats.snapshot()
    second = stratum.execute(query, strategy=SlicingStrategy.MAX)
    end = db.stats.snapshot()
    assert second.coalesced() == first.coalesced()
    assert end["plans_compiled"] == mid["plans_compiled"]
    assert end["plan_cache_hits"] > mid["plan_cache_hits"]
