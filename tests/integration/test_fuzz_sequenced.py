"""Property-based fuzzing of sequenced semantics.

Hypothesis generates random version histories and a family of queries
(joins, predicates, stored-function calls); for each we assert the
paper's two §VII-B invariants:

* MAX and PERST coalesce to the same temporal relation;
* both match the granule-by-granule reference evaluation.

This is the strongest correctness evidence in the suite: it explores
period layouts (meeting, overlapping, nested, disjoint) far beyond the
hand-written cases.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sqlengine.values import Date
from repro.temporal import SlicingStrategy, TemporalStratum
from repro.temporal.period import Period
from repro.temporal.validate import (
    check_commutativity,
    check_strategy_equivalence,
)

BASE = Date.from_ymd(2010, 1, 1).ordinal
SPAN = 60  # days of history
CONTEXT = Period(BASE, BASE + SPAN)

# a version: (entity 0..2, value 0..3, begin offset, duration)
versions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=SPAN - 1),
        st.integers(min_value=1, max_value=SPAN),
    ),
    min_size=1,
    max_size=8,
)

GET_VALUE_FN = """
CREATE FUNCTION value_of (eid CHAR(4))
RETURNS INTEGER
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE v INTEGER;
  SET v = (SELECT MAX(val) FROM fact WHERE entity = eid);
  RETURN v;
END
"""


def build_stratum(fact_rows, dim_rows):
    stratum = TemporalStratum()
    stratum.create_temporal_table(
        "CREATE TABLE fact (entity CHAR(4), val INTEGER,"
        " begin_time DATE, end_time DATE)"
    )
    stratum.create_temporal_table(
        "CREATE TABLE dim (entity CHAR(4), tag CHAR(4),"
        " begin_time DATE, end_time DATE)"
    )
    for entity, value, start, duration in fact_rows:
        end = min(start + duration, SPAN)
        if start >= end:
            continue
        stratum.db.insert_rows(
            "fact",
            [[f"e{entity}", value, Date(BASE + start), Date(BASE + end)]],
        )
    for entity, value, start, duration in dim_rows:
        end = min(start + duration, SPAN)
        if start >= end:
            continue
        stratum.db.insert_rows(
            "dim",
            [[f"e{entity}", f"t{value}", Date(BASE + start), Date(BASE + end)]],
        )
    stratum.register_routine(GET_VALUE_FN)
    return stratum


QUERIES = [
    # plain selection-projection
    "SELECT entity, val FROM fact WHERE val > 1",
    # join with period intersection
    "SELECT f.entity, f.val, d.tag FROM fact f, dim d"
    " WHERE f.entity = d.entity",
    # self-join
    "SELECT a.entity FROM fact a, fact b"
    " WHERE a.entity = b.entity AND a.val < b.val",
    # DISTINCT
    "SELECT DISTINCT entity FROM fact",
]

FN_QUERY = (
    "SELECT d.entity, value_of(d.entity) AS v FROM dim d WHERE d.tag = 't1'"
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(fact=versions, dim=versions, query_index=st.integers(0, len(QUERIES) - 1))
def test_random_histories_strategies_agree(fact, dim, query_index):
    stratum = build_stratum(fact, dim)
    query = QUERIES[query_index]
    sequenced = (
        f"VALIDTIME [DATE '{Date(CONTEXT.begin).to_iso()}',"
        f" DATE '{Date(CONTEXT.end).to_iso()}'] " + query
    )
    ok, message = check_strategy_equivalence(stratum, sequenced, CONTEXT)
    assert ok, f"{query}: {message}"


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(fact=versions, dim=versions)
def test_random_histories_commutativity(fact, dim):
    """Both strategies must match the granule-wise reference, including a
    query that routes an aggregate through a stored function (PERST's
    loop fallback)."""
    stratum = build_stratum(fact, dim)
    sequenced = (
        f"VALIDTIME [DATE '{Date(CONTEXT.begin).to_iso()}',"
        f" DATE '{Date(CONTEXT.end).to_iso()}'] " + FN_QUERY
    )
    for strategy in (SlicingStrategy.MAX, SlicingStrategy.PERST):
        ok, message = check_commutativity(
            stratum, sequenced, FN_QUERY, CONTEXT,
            strategy=strategy, sample_every=3,
        )
        assert ok, f"{strategy.value}: {message}"


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(fact=versions, dim=versions, query_index=st.integers(0, len(QUERIES) - 1))
def test_random_histories_explain_analyze(fact, dim, query_index):
    """Observability must not perturb semantics: for every fuzzed
    statement, EXPLAIN ANALYZE (which executes under tracing) returns
    the same temporal relation as the untraced run, and the counts it
    reports agree with the metrics registry and the span tree."""
    from repro.temporal.constant_periods import compute_constant_periods

    stratum = build_stratum(fact, dim)
    query = QUERIES[query_index]
    sequenced = (
        f"VALIDTIME [DATE '{Date(CONTEXT.begin).to_iso()}',"
        f" DATE '{Date(CONTEXT.end).to_iso()}'] " + query
    )
    for strategy in (SlicingStrategy.MAX, SlicingStrategy.PERST):
        assert stratum.db.tracer.enabled is False
        plain = stratum.execute(sequenced, strategy=strategy).coalesced()
        obs = stratum.db.obs
        stats = stratum.db.stats
        slices_before = obs.value("stratum.slices")
        calls_before = stats.total_routine_calls
        analyzed = stratum.execute(
            "EXPLAIN ANALYZE " + sequenced, strategy=strategy
        )
        # identical results with tracing on and off
        assert sorted(analyzed.result.coalesced()) == sorted(plain)
        # tracer state restored
        assert stratum.db.tracer.enabled is False
        # slice accounting is internally consistent
        slices = obs.value("stratum.slices") - slices_before
        if strategy is SlicingStrategy.MAX:
            tables = ["fact"] if "dim" not in query else ["fact", "dim"]
            expected = len(
                compute_constant_periods(
                    stratum.db, tables, stratum.registry, CONTEXT
                )
            )
            assert slices == expected
            root = stratum.db.tracer.last_root
            assert root.find("stratum.constant_periods").attrs["slices"] == slices
        # routine invocations in the span tree match the engine counter
        calls = stats.total_routine_calls - calls_before
        root = stratum.db.tracer.last_root
        assert len(root.find_all("routine")) == calls


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(fact=versions)
def test_random_histories_transaction_dimension(fact):
    """The same invariants hold along the transaction-time dimension."""
    stratum = TemporalStratum()
    stratum.db.execute("CREATE TABLE tfact (entity CHAR(4), val INTEGER)")
    stratum.db.now = Date(BASE)
    stratum.execute("ALTER TABLE tfact ADD TRANSACTIONTIME")
    # replay as modifications at increasing clock times
    for entity, value, start, _duration in sorted(fact, key=lambda v: v[2]):
        stratum.db.now = Date(BASE + start)
        existing = stratum.execute(
            f"SELECT val FROM tfact WHERE entity = 'e{entity}'"
        ).rows
        if existing:
            stratum.execute(
                f"UPDATE tfact SET val = {value} WHERE entity = 'e{entity}'"
            )
        else:
            stratum.execute(
                f"INSERT INTO tfact (entity, val) VALUES ('e{entity}', {value})"
            )
    stratum.db.now = Date(BASE + SPAN)
    sequenced = (
        f"TRANSACTIONTIME [DATE '{Date(CONTEXT.begin).to_iso()}',"
        f" DATE '{Date(CONTEXT.end).to_iso()}']"
        " SELECT entity, val FROM tfact"
    )
    ok, message = check_strategy_equivalence(stratum, sequenced, CONTEXT)
    assert ok, message
    # time-travel consistency: the state as of any clock equals the
    # sequenced result sliced at that granule
    probe = Date(BASE + SPAN // 2)
    stratum.transaction_clock = probe
    state = sorted(
        tuple(r) for r in stratum.execute("SELECT entity, val FROM tfact").rows
    )
    stratum.transaction_clock = None
    result = stratum.execute(sequenced, strategy=SlicingStrategy.MAX)
    sliced = sorted(
        values
        for values, period in result.coalesced()
        if period.contains(probe.ordinal)
    )
    assert state == sliced