"""Differential fuzz: interval-indexed slicing ≡ linear scanning.

The interval index is pruning-only, so switching it off must never
change a result — not just the coalesced temporal relation but the raw
rows in their original order.  Two generators drive this: Hypothesis
version histories (period layouts beyond the hand-written cases) and
the full 16-query τPSM suite, each run under MAX, PERST and AUTO with
the index enabled vs. force-disabled.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sqlengine.values import Date
from repro.taubench import ALL_QUERIES
from repro.temporal import SlicingStrategy

from tests.integration.test_fuzz_sequenced import (
    CONTEXT,
    FN_QUERY,
    QUERIES,
    build_stratum,
    versions,
)

BEGIN, END = "2010-02-01", "2010-03-01"

STRATEGIES = (SlicingStrategy.MAX, SlicingStrategy.PERST, SlicingStrategy.AUTO)


def raw(result):
    """Rows exactly as delivered: order and duplicates preserved."""
    if isinstance(result, list):  # CALL loops yield one result per slice
        return [raw(r) for r in result]
    return (list(result.columns), [list(row) for row in result.rows])


def indexed_vs_linear(stratum, sequenced, strategy):
    db = stratum.db
    assert db.interval_indexing_enabled
    indexed = raw(stratum.execute(sequenced, strategy=strategy))
    db.interval_indexing_enabled = False
    try:
        linear = raw(stratum.execute(sequenced, strategy=strategy))
    finally:
        db.interval_indexing_enabled = True
    return indexed, linear


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(fact=versions, dim=versions, query_index=st.integers(0, len(QUERIES) - 1))
def test_random_histories_indexed_equals_linear(fact, dim, query_index):
    stratum = build_stratum(fact, dim)
    sequenced = (
        f"VALIDTIME [DATE '{Date(CONTEXT.begin).to_iso()}',"
        f" DATE '{Date(CONTEXT.end).to_iso()}'] " + QUERIES[query_index]
    )
    for strategy in STRATEGIES:
        indexed, linear = indexed_vs_linear(stratum, sequenced, strategy)
        assert indexed == linear, strategy.value


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(fact=versions, dim=versions)
def test_random_histories_routine_path(fact, dim):
    """The pruned path inside routine bodies (MAX per-period loop and
    PERST row loop) agrees with linear scanning too."""
    stratum = build_stratum(fact, dim)
    sequenced = (
        f"VALIDTIME [DATE '{Date(CONTEXT.begin).to_iso()}',"
        f" DATE '{Date(CONTEXT.end).to_iso()}'] " + FN_QUERY
    )
    for strategy in STRATEGIES:
        indexed, linear = indexed_vs_linear(stratum, sequenced, strategy)
        assert indexed == linear, strategy.value


@pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
def test_taubench_indexed_equals_linear(query, small_dataset):
    query.install(small_dataset)
    sequenced = query.sequenced_sql(small_dataset, BEGIN, END)
    stratum = small_dataset.stratum
    for strategy in STRATEGIES:
        if strategy is SlicingStrategy.PERST and not query.perst_applicable:
            continue
        indexed, linear = indexed_vs_linear(stratum, sequenced, strategy)
        assert indexed == linear, f"{query.name}/{strategy.value}"


def test_taubench_suite_exercises_the_index(small_dataset):
    """Sanity for the differential above: the enabled runs actually go
    through the interval index on scan-shaped sequenced statements."""
    db = small_dataset.stratum.db
    before = db.obs.value("engine.interval_index_hits")
    small_dataset.stratum.execute(
        f"VALIDTIME [DATE '{BEGIN}', DATE '{END}']"
        " SELECT COUNT(*) AS n FROM item",
        strategy=SlicingStrategy.MAX,
    )
    assert db.obs.value("engine.interval_index_hits") > before
    assert db.obs.value("engine.interval_rows_pruned") > 0
