"""Acceptance: a durable τBench store survives close/reopen bit-exact.

The ISSUE's acceptance criterion: load DS1/SMALL into a durable
stratum, run the full 16-query suite under both slicing strategies,
mutate history with a sequenced update, close, reopen from disk, and
get identical answers for every query/strategy cell.
"""

import pytest

from repro.taubench import ALL_QUERIES, build_dataset
from repro.taubench.io import copy_dataset_into
from repro.temporal.stratum import SlicingStrategy, TemporalResult, TemporalStratum

BEGIN, END = "2010-02-01", "2010-03-01"


def normalize(result):
    """Order-independent, period-coalesced view of a query result."""
    if isinstance(result, TemporalResult):
        return sorted(result.coalesced(), key=repr)
    if isinstance(result, list):  # CALL loops yield one result per slice
        return [normalize(r) for r in result]
    if hasattr(result, "rows"):
        return sorted(map(tuple, result.rows), key=repr)
    return result


def run_suite(dataset):
    """All 16 queries under MAX, plus PERST where applicable."""
    results = {}
    for query in ALL_QUERIES:
        query.install(dataset)
        sequenced = query.sequenced_sql(dataset, BEGIN, END)
        strategies = [SlicingStrategy.MAX]
        if query.perst_applicable:
            strategies.append(SlicingStrategy.PERST)
        for strategy in strategies:
            result = dataset.stratum.execute(sequenced, strategy)
            results[(query.name, strategy.name)] = normalize(result)
    return results


@pytest.fixture(scope="module")
def durable_dir(tmp_path_factory, small_dataset):
    """A durable DS1/SMALL store: loaded, queried, mutated, closed."""
    path = tmp_path_factory.mktemp("taubench") / "store"
    stratum = TemporalStratum.open(path)
    dataset = copy_dataset_into(stratum, small_dataset)

    before_mutation = run_suite(dataset)

    # rewrite a slice of history, then re-run everything
    dataset.stratum.execute(
        f"VALIDTIME [DATE '{BEGIN}', DATE '2010-02-15']"
        " UPDATE item SET price = price + 10000, number_of_pages = 1"
    )
    dataset.stratum.execute(
        f"VALIDTIME [DATE '{BEGIN}', DATE '2010-02-15']"
        " UPDATE author SET country = 'Atlantis'"
        f" WHERE author_id = '{dataset.probe_author_id}'"
    )
    after_mutation = run_suite(dataset)
    stratum.close(checkpoint=False)  # force reopen to replay the WAL
    return path, dataset, before_mutation, after_mutation


def test_mutation_changed_some_answer(durable_dir):
    _, _, before, after = durable_dir
    assert before != after


def test_reopen_reproduces_all_query_results(durable_dir):
    path, dataset, _, after_mutation = durable_dir
    import dataclasses

    recovered = TemporalStratum.open(path)
    try:
        reopened = dataclasses.replace(dataset, stratum=recovered)
        assert run_suite(reopened) == after_mutation
    finally:
        recovered.close()


def test_reopen_after_checkpoint_reproduces_results(durable_dir, tmp_path):
    """Same check through the snapshot path (close with checkpoint)."""
    path, dataset, _, after_mutation = durable_dir
    import dataclasses

    recovered = TemporalStratum.open(path)
    recovered.checkpoint()
    recovered.close()
    assert (path / "snapshot.json").exists()
    reopened = TemporalStratum.open(path)
    try:
        rebound = dataclasses.replace(dataset, stratum=reopened)
        assert run_suite(rebound) == after_mutation
    finally:
        reopened.close(checkpoint=False)


def test_clock_survives_reopen(durable_dir, small_dataset):
    path, _, _, _ = durable_dir
    recovered = TemporalStratum.open(path)
    try:
        assert recovered.db.now == small_dataset.stratum.db.now
    finally:
        recovered.close(checkpoint=False)
