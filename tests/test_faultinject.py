"""Crash every temporal strategy mid-flight and assert exact restoration.

Each test arms a single-shot :class:`~repro.sqlengine.txn.FaultPlan`,
runs a temporal statement that the fault aborts partway through, and
asserts the database is byte-identical to never having run it — row
data, version counters, catalog contents, schema version, temporal
registries, hash-index validity.  Because faults are single-shot, the
same statement then succeeds on re-run.
"""

from __future__ import annotations

import pytest

from repro.sqlengine.errors import FaultInjected
from repro.sqlengine.values import Date
from repro.temporal import TemporalStratum
from repro.temporal.stratum import SlicingStrategy

from tests.conftest import make_bookstore
from tests.faultinject import (
    assert_snapshot_equal,
    clear_fault,
    install_fault,
    snapshot_db,
    snapshot_registry,
)


def crash_and_check(stratum, sql, site, target=None, at=1,
                    strategy=SlicingStrategy.AUTO):
    """Arm a fault, run ``sql``, assert nothing changed, clear the fault."""
    db = stratum.db
    before = snapshot_db(db)
    before_vt = snapshot_registry(stratum.registry)
    before_tt = snapshot_registry(stratum.tt_registry)
    install_fault(db, site, target=target, at=at)
    with pytest.raises(FaultInjected):
        stratum.execute(sql, strategy)
    assert_snapshot_equal(db, before)
    assert snapshot_registry(stratum.registry) == before_vt
    assert snapshot_registry(stratum.tt_registry) == before_tt
    assert db.txn.log == [] and db.txn.marks == []
    clear_fault(db)


# ---------------------------------------------------------------------------
# sequenced modifications (PERST-style delete+insert pairs)
# ---------------------------------------------------------------------------

SEQ_UPDATE = (
    "VALIDTIME [DATE '2010-02-01', DATE '2010-05-01']"
    " UPDATE author SET first_name = 'X' WHERE author_id = 'a1'"
)
SEQ_DELETE = (
    "VALIDTIME [DATE '2010-02-01', DATE '2010-05-01']"
    " DELETE FROM author WHERE author_id = 'a1'"
)


@pytest.mark.parametrize(
    "site,at",
    [
        ("table.replace_rows", 1),  # before the old rows are displaced
        ("table.insert", 1),        # after displacement, before re-insert
        ("table.insert", 3),        # partway through the splits
    ],
)
def test_sequenced_update_crash(bookstore, site, at):
    crash_and_check(bookstore, SEQ_UPDATE, site, target="author", at=at)
    # faults cleared: the identical statement now applies cleanly
    bookstore.execute(SEQ_UPDATE)
    rows = bookstore.db.table("author").rows
    assert any(row[1] == "X" for row in rows)


@pytest.mark.parametrize(
    "site,at",
    [("table.replace_rows", 1), ("table.insert", 1), ("table.insert", 2)],
)
def test_sequenced_delete_crash(bookstore, site, at):
    crash_and_check(bookstore, SEQ_DELETE, site, target="author", at=at)
    bookstore.execute(SEQ_DELETE)
    names = [(row[0], row[1]) for row in bookstore.db.table("author").rows]
    # the overlapping a1 row was split; the deleted span is gone
    assert ("a1", "Ben") in names


# ---------------------------------------------------------------------------
# current (TUC) modifications
# ---------------------------------------------------------------------------

CUR_UPDATE = "UPDATE author SET first_name = 'Rose' WHERE author_id = 'a2'"
CUR_DELETE = "DELETE FROM author WHERE author_id = 'a2'"


@pytest.mark.parametrize("site", ["table.set_cell", "table.insert"])
def test_current_update_crash(bookstore, site):
    # the fault on table.insert fires after set_cell already closed the
    # old version — the canonical mid-flight state
    crash_and_check(bookstore, CUR_UPDATE, site, target="author")
    bookstore.execute(CUR_UPDATE)
    table = bookstore.db.table("author")
    now = bookstore.db.now
    new_versions = [row for row in table.rows if row[1] == "Rose"]
    assert len(new_versions) == 1
    assert new_versions[0][3] == now  # begins today


@pytest.mark.parametrize("site", ["table.set_cell", "table.replace_rows"])
def test_current_delete_crash(bookstore, site):
    crash_and_check(bookstore, CUR_DELETE, site, target="author")
    bookstore.execute(CUR_DELETE)
    table = bookstore.db.table("author")
    now = bookstore.db.now
    a2 = [row for row in table.rows if row[0] == "a2"]
    assert len(a2) == 1 and a2[0][4] == now  # closed at today


# ---------------------------------------------------------------------------
# MAX slicing: the per-constant-period CALL loop
# ---------------------------------------------------------------------------

LOG_NAMES = """
CREATE PROCEDURE log_names ()
LANGUAGE SQL
BEGIN
  INSERT INTO audit SELECT first_name FROM author WHERE author_id = 'a1';
END
"""

MAX_CALL = "VALIDTIME [DATE '2010-01-01', DATE '2010-04-01'] CALL log_names()"


@pytest.fixture
def max_bookstore():
    stratum = make_bookstore()
    stratum.db.execute("CREATE TABLE audit (name CHAR(50))")
    stratum.register_routine(LOG_NAMES)
    return stratum


def test_max_call_crash_mid_loop(max_bookstore):
    """Crash in the second constant period: the first period's effects
    must be reverted too (the stratum's savepoint spans the loop)."""
    stratum = max_bookstore
    crash_and_check(
        stratum, MAX_CALL, "table.insert", target="audit", at=2,
        strategy=SlicingStrategy.MAX,
    )
    assert stratum.db.table("audit").rows == []
    # cp scratch table and routine clones from the aborted run are gone
    assert not stratum.db.catalog.has_table("taupsm_cp")
    stratum.execute(MAX_CALL, SlicingStrategy.MAX)
    # two constant periods in [2010-01-01, 2010-04-01): split at 02-01
    assert [row[0] for row in stratum.db.table("audit").rows] == ["Ben", "Ben"]


def test_max_call_crash_then_perst_unaffected(max_bookstore):
    """A crashed MAX run leaves no debris that perturbs later queries."""
    stratum = max_bookstore
    crash_and_check(
        stratum, MAX_CALL, "table.insert", target="audit", at=1,
        strategy=SlicingStrategy.MAX,
    )
    result = stratum.execute(
        "VALIDTIME SELECT first_name FROM author WHERE author_id = 'a1'",
        SlicingStrategy.PERST,
    )
    assert sorted(r[0] for r, _ in result.coalesced()) == ["Ben", "Benjamin"]


# ---------------------------------------------------------------------------
# transaction-time maintenance
# ---------------------------------------------------------------------------


@pytest.fixture
def tt_stratum():
    stratum = TemporalStratum()
    db = stratum.db
    db.execute("CREATE TABLE accounts (id CHAR(10), balance INTEGER)")
    db.execute("INSERT INTO accounts VALUES ('x', 100), ('y', 200)")
    stratum.execute("ALTER TABLE accounts ADD TRANSACTIONTIME")
    db.now = Date.from_ymd(2011, 6, 1)  # advance past the migration stamp
    return stratum


@pytest.mark.parametrize("site", ["table.set_cell", "table.insert"])
def test_transactiontime_update_crash(tt_stratum, site):
    sql = "UPDATE accounts SET balance = 150 WHERE id = 'x'"
    crash_and_check(tt_stratum, sql, site, target="accounts")
    tt_stratum.execute(sql)
    table = tt_stratum.db.table("accounts")
    believed_now = [row for row in table.rows if row[0] == "x" and row[1] == 150]
    assert len(believed_now) == 1


@pytest.mark.parametrize("site", ["table.set_cell", "table.replace_rows"])
def test_transactiontime_delete_crash(tt_stratum, site):
    sql = "DELETE FROM accounts WHERE id = 'y'"
    crash_and_check(tt_stratum, sql, site, target="accounts")
    tt_stratum.execute(sql)
    table = tt_stratum.db.table("accounts")
    stop_index = table.column_index("tt_stop")
    closed = [row for row in table.rows if row[0] == "y"]
    assert len(closed) == 1
    assert closed[0][stop_index] == tt_stratum.db.now  # logically deleted


@pytest.mark.parametrize(
    "site,at",
    [("table.add_column", 1), ("table.add_column", 2), ("registry.add", 1)],
)
def test_add_transactiontime_crash(site, at):
    """ALTER ... ADD TRANSACTIONTIME is atomic: a crash between the two
    column additions (or before registration) leaves the plain table."""
    stratum = TemporalStratum()
    db = stratum.db
    db.execute("CREATE TABLE accounts (id CHAR(10), balance INTEGER)")
    db.execute("INSERT INTO accounts VALUES ('x', 100)")
    crash_and_check(
        stratum, "ALTER TABLE accounts ADD TRANSACTIONTIME", site,
        target="accounts", at=at,
    )
    assert db.table("accounts").column_names == ["id", "balance"]
    assert not stratum.tt_registry.is_temporal("accounts")
    stratum.execute("ALTER TABLE accounts ADD TRANSACTIONTIME")
    assert stratum.tt_registry.is_temporal("accounts")
    assert db.table("accounts").rows[0][2:] == [
        db.now, Date(Date.MAX_ORDINAL)
    ]


@pytest.mark.parametrize(
    "site,at",
    [("table.add_column", 2), ("registry.add", 1)],
)
def test_add_validtime_crash(site, at):
    stratum = TemporalStratum()
    db = stratum.db
    db.execute("CREATE TABLE t (v INTEGER)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    crash_and_check(stratum, "ALTER TABLE t ADD VALIDTIME", site, target="t", at=at)
    assert db.table("t").column_names == ["v"]
    assert db.table("t").rows == [[1], [2]]
    stratum.execute("ALTER TABLE t ADD VALIDTIME")
    assert stratum.registry.is_temporal("t")
