"""Shared fixtures: a conventional engine and the paper's bookstore."""

from __future__ import annotations

import pytest

from repro.sqlengine import Database
from repro.sqlengine.values import Date
from repro.temporal import TemporalStratum


@pytest.fixture
def db() -> Database:
    return Database()


def make_bookstore() -> TemporalStratum:
    """The paper's running example: author/item/item_author with history.

    'Ben' is author a1's first name until 2010-06-01, then 'Benjamin'.
    """
    stratum = TemporalStratum()
    stratum.create_temporal_table(
        "CREATE TABLE author (author_id CHAR(10), first_name CHAR(50),"
        " last_name CHAR(50), begin_time DATE, end_time DATE)"
    )
    stratum.create_temporal_table(
        "CREATE TABLE item (id CHAR(10), title CHAR(100), price FLOAT,"
        " begin_time DATE, end_time DATE)"
    )
    stratum.create_temporal_table(
        "CREATE TABLE item_author (item_id CHAR(10), author_id CHAR(10),"
        " begin_time DATE, end_time DATE)"
    )
    db = stratum.db
    db.execute(
        "INSERT INTO author VALUES"
        " ('a1', 'Ben', 'Okri', DATE '2010-01-01', DATE '2010-06-01')"
    )
    db.execute(
        "INSERT INTO author VALUES"
        " ('a1', 'Benjamin', 'Okri', DATE '2010-06-01', DATE '9999-12-31')"
    )
    db.execute(
        "INSERT INTO author VALUES"
        " ('a2', 'Rosa', 'Luxemburg', DATE '2010-02-01', DATE '9999-12-31')"
    )
    db.execute(
        "INSERT INTO item VALUES"
        " ('i1', 'Book One', 25.0, DATE '2010-01-15', DATE '9999-12-31')"
    )
    db.execute(
        "INSERT INTO item VALUES"
        " ('i2', 'Book Two', 80.0, DATE '2010-03-01', DATE '2010-09-01')"
    )
    db.execute(
        "INSERT INTO item_author VALUES"
        " ('i1', 'a1', DATE '2010-01-15', DATE '9999-12-31')"
    )
    db.execute(
        "INSERT INTO item_author VALUES"
        " ('i2', 'a1', DATE '2010-03-01', DATE '2010-09-01')"
    )
    db.execute(
        "INSERT INTO item_author VALUES"
        " ('i1', 'a2', DATE '2010-02-01', DATE '2010-04-01')"
    )
    db.now = Date.from_ymd(2010, 4, 1)
    return stratum


GET_AUTHOR_NAME = """
CREATE FUNCTION get_author_name (aid CHAR(10))
RETURNS CHAR(50)
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE fname CHAR(50);
  SET fname = (SELECT first_name FROM author WHERE author_id = aid);
  RETURN fname;
END
"""


@pytest.fixture
def bookstore() -> TemporalStratum:
    return make_bookstore()


@pytest.fixture
def bookstore_with_fn() -> TemporalStratum:
    stratum = make_bookstore()
    stratum.register_routine(GET_AUTHOR_NAME)
    return stratum


@pytest.fixture(scope="session")
def small_dataset():
    """DS1-SMALL, shared across the session (tests must not mutate data)."""
    from repro.taubench import build_dataset

    return build_dataset("DS1", "SMALL")
