"""Snapshot-isolation visibility properties, via the direct session API.

Each test drives two (or more) sessions on one in-memory database with
``Database.create_session`` / ``activate_txn`` — the same machinery the
wire server uses, minus the sockets — and checks one MVCC guarantee:
own-writes visibility, no dirty reads, repeatable reads, first-writer-
and first-committer-wins 40001s, handler integration, and pin/chain
cleanup.
"""

import pytest

from repro.sqlengine.engine import Database
from repro.sqlengine.errors import ExecutionError, SerializationError


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE t (id INT, v VARCHAR(10))")
    db.execute("INSERT INTO t VALUES (1, 'a')")
    db.execute("INSERT INTO t VALUES (2, 'b')")
    return db


def read_v(db, row_id):
    return db.execute(f"SELECT v FROM t WHERE id = {row_id}").scalar()


def test_session_reads_own_uncommitted_writes(db):
    session = db.create_session("s")
    db.activate_txn(session)
    db.execute("BEGIN")
    db.execute("UPDATE t SET v = 'mine' WHERE id = 1")
    assert read_v(db, 1) == "mine"
    db.execute("ROLLBACK")
    assert read_v(db, 1) == "a"
    db.close_session(session)


def test_no_dirty_reads(db):
    session = db.create_session("s")
    root = db.root_txn
    db.activate_txn(session)
    db.execute("BEGIN")
    db.execute("UPDATE t SET v = 'dirty' WHERE id = 1")
    db.activate_txn(root)
    assert read_v(db, 1) == "a"
    db.activate_txn(session)
    db.execute("ROLLBACK")
    db.activate_txn(root)
    assert read_v(db, 1) == "a"
    db.close_session(session)


def test_repeatable_reads_across_foreign_commit(db):
    session = db.create_session("s")
    root = db.root_txn
    db.activate_txn(session)
    db.execute("BEGIN")
    assert read_v(db, 1) == "a"
    db.activate_txn(root)
    db.execute("UPDATE t SET v = 'new' WHERE id = 1")
    assert read_v(db, 1) == "new"
    # the pinned session still sees its snapshot, repeatedly
    db.activate_txn(session)
    assert read_v(db, 1) == "a"
    assert read_v(db, 1) == "a"
    db.execute("COMMIT")
    # a fresh snapshot sees the commit
    assert read_v(db, 1) == "new"
    db.close_session(session)


def test_first_writer_wins_raises_40001_exactly_once(db):
    session = db.create_session("s")
    root = db.root_txn
    db.activate_txn(root)
    db.execute("BEGIN")
    db.execute("UPDATE t SET v = 'root' WHERE id = 1")
    db.activate_txn(session)
    with pytest.raises(SerializationError) as excinfo:
        db.execute("UPDATE t SET v = 'session' WHERE id = 1")
    assert excinfo.value.sqlstate == "40001"
    # the failed statement rolled back cleanly: the session can go on
    # reading (the pre-image) and writing to an unclaimed table without
    # a second conflict appearing out of nowhere
    assert read_v(db, 1) == "a"
    db.execute("CREATE TABLE u (id INT)")
    db.execute("INSERT INTO u VALUES (7)")
    db.activate_txn(root)
    db.execute("COMMIT")
    db.close_session(session)
    assert read_v(db, 1) == "root"
    assert db.execute("SELECT id FROM u").scalar() == 7


def test_first_committer_wins_and_retry_succeeds(db):
    session = db.create_session("s")
    root = db.root_txn
    db.activate_txn(session)
    db.execute("BEGIN")
    assert read_v(db, 1) == "a"  # snapshot pinned before root commits
    db.activate_txn(root)
    db.execute("UPDATE t SET v = 'first' WHERE id = 1")
    db.activate_txn(session)
    with pytest.raises(SerializationError):
        db.execute("UPDATE t SET v = 'second' WHERE id = 1")
    db.execute("ROLLBACK")
    # the classic retry loop: a fresh transaction sees the committed
    # state and the same update now succeeds
    db.execute("BEGIN")
    db.execute("UPDATE t SET v = 'second' WHERE id = 1")
    db.execute("COMMIT")
    db.close_session(session)
    assert read_v(db, 1) == "second"


def test_insert_insert_on_same_table_conflicts(db):
    # claims are table-granularity: concurrent inserts into one table
    # are a write-write conflict by design
    session = db.create_session("s")
    root = db.root_txn
    db.activate_txn(session)
    db.execute("BEGIN")
    db.execute("INSERT INTO t VALUES (10, 'x')")
    db.activate_txn(root)
    with pytest.raises(SerializationError):
        db.execute("INSERT INTO t VALUES (11, 'y')")
    db.activate_txn(session)
    db.execute("COMMIT")
    db.close_session(session)
    assert len(db.execute("SELECT id FROM t").rows) == 3


def test_continue_handler_catches_40001(db):
    db.execute("CREATE TABLE log (note VARCHAR(20))")
    db.execute(
        "CREATE PROCEDURE try_update () LANGUAGE SQL BEGIN"
        " DECLARE CONTINUE HANDLER FOR SQLSTATE '40001'"
        " INSERT INTO log VALUES ('handled');"
        " UPDATE t SET v = 'proc' WHERE id = 1;"
        " INSERT INTO log VALUES ('after');"
        " END"
    )
    session = db.create_session("s")
    root = db.root_txn
    db.activate_txn(root)
    db.execute("BEGIN")
    db.execute("UPDATE t SET v = 'root' WHERE id = 1")
    db.activate_txn(session)
    db.execute("CALL try_update()")  # conflict handled inside, CONTINUEs
    notes = [r[0] for r in db.execute("SELECT note FROM log").rows]
    assert notes == ["handled", "after"]
    db.activate_txn(root)
    db.execute("COMMIT")
    db.close_session(session)
    assert read_v(db, 1) == "root"  # the handled UPDATE never applied


def test_exit_handler_catches_40001(db):
    db.execute("CREATE TABLE log (note VARCHAR(20))")
    db.execute(
        "CREATE PROCEDURE try_update () LANGUAGE SQL BEGIN"
        " DECLARE EXIT HANDLER FOR SQLSTATE '40001'"
        " INSERT INTO log VALUES ('handled');"
        " UPDATE t SET v = 'proc' WHERE id = 1;"
        " INSERT INTO log VALUES ('after');"
        " END"
    )
    session = db.create_session("s")
    root = db.root_txn
    db.activate_txn(root)
    db.execute("BEGIN")
    db.execute("UPDATE t SET v = 'root' WHERE id = 1")
    db.activate_txn(session)
    db.execute("CALL try_update()")
    notes = [r[0] for r in db.execute("SELECT note FROM log").rows]
    assert notes == ["handled"]  # EXIT: the statement after is skipped
    db.activate_txn(root)
    db.execute("ROLLBACK")
    db.close_session(session)


def test_unhandled_40001_unwinds_like_signal(db):
    db.execute(
        "CREATE PROCEDURE blind_update () LANGUAGE SQL BEGIN"
        " UPDATE t SET v = 'proc' WHERE id = 1;"
        " END"
    )
    session = db.create_session("s")
    root = db.root_txn
    db.activate_txn(root)
    db.execute("BEGIN")
    db.execute("UPDATE t SET v = 'root' WHERE id = 1")
    db.activate_txn(session)
    with pytest.raises(SerializationError) as excinfo:
        db.execute("CALL blind_update()")
    assert excinfo.value.sqlstate == "40001"
    db.activate_txn(root)
    db.execute("ROLLBACK")
    db.close_session(session)


def test_close_session_rolls_back_and_releases_pin(db):
    session = db.create_session("s")
    db.activate_txn(session)
    db.execute("BEGIN")
    db.execute("UPDATE t SET v = 'gone' WHERE id = 1")
    assert db.mvcc.pins and db.mvcc.state()["inflight_writers"]
    db.close_session(session)
    assert not db.mvcc.pins
    assert db.mvcc.quiescent()
    assert not db.mvcc.multi  # collapsed back to the dormant state
    assert read_v(db, 1) == "a"


def test_version_chains_collapse_when_last_session_leaves(db):
    session = db.create_session("s")
    root = db.root_txn
    db.activate_txn(session)
    db.execute("BEGIN")
    assert read_v(db, 1) == "a"
    db.activate_txn(root)
    db.execute("UPDATE t SET v = 'new' WHERE id = 1")
    table = db.catalog.get_table("t")
    assert table.version_chain  # the session's snapshot needs it
    db.activate_txn(session)
    db.execute("COMMIT")
    db.close_session(session)
    assert not table.version_chain
    assert not table._snapshot_views
    assert not db.mvcc.multi


def test_registration_requires_quiescence_only_when_dormant(db):
    db.execute("BEGIN")
    db.execute("UPDATE t SET v = 'open' WHERE id = 1")
    # dormant -> multi with the root's write claim pending: the
    # pre-image was never captured, so registration must refuse
    with pytest.raises(ExecutionError):
        db.create_session("s")
    db.execute("COMMIT")
    session = db.create_session("s")
    # already multi: a second session may join even mid-write
    db.activate_txn(session)
    db.execute("BEGIN")
    db.execute("UPDATE t SET v = 'claimed' WHERE id = 1")
    other = db.create_session("s2")
    db.execute("COMMIT")
    db.close_session(other)
    db.close_session(session)


def test_reads_never_claim_or_conflict(db):
    # a read-only CALL in one session runs against the pre-image of a
    # table another session is mutating — no claim, no 40001, and the
    # reader leaves no write-set entry behind
    db.execute(
        "CREATE PROCEDURE count_rows () LANGUAGE SQL BEGIN"
        " SELECT COUNT(*) FROM t;"
        " END"
    )
    session = db.create_session("s")
    root = db.root_txn
    db.activate_txn(root)
    db.execute("BEGIN")
    db.execute("INSERT INTO t VALUES (3, 'c')")
    db.activate_txn(session)
    results = db.execute("CALL count_rows()")
    assert results[0].scalar() == 2  # pre-image: the insert is invisible
    assert not session.write_set
    db.activate_txn(root)
    db.execute("COMMIT")
    db.activate_txn(session)
    results = db.execute("CALL count_rows()")
    assert results[0].scalar() == 3
    db.close_session(session)
