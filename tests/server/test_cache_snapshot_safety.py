"""Snapshot safety of the plan, transform, and constant-period caches.

Before MVCC, every cache could assume exactly one global table state:
a cached plan resolved its table by name, the cp cache's identity
check compared against THE table.  With two sessions pinned at
different snapshots the same cached artifacts are consulted by both —
these tests pin a reader, commit changes from the other session, and
assert the reader's repeated (cache-served) executions keep returning
its snapshot's data, not the live state the caches last saw.
"""

import pytest

from repro.temporal.stratum import SlicingStrategy

from tests.conftest import make_bookstore

SEQ = (
    "VALIDTIME [DATE '2010-01-01', DATE '2011-01-01']"
    " SELECT first_name FROM author"
)
JOIN = (
    "VALIDTIME [DATE '2010-01-01', DATE '2011-01-01']"
    " SELECT first_name, title FROM author, item, item_author"
    " WHERE author.author_id = item_author.author_id"
    " AND item.id = item_author.item_id"
)


def raw(result):
    if isinstance(result, list):
        return [raw(r) for r in result]
    return (list(result.columns), [list(row) for row in result.rows])


@pytest.fixture
def stratum():
    return make_bookstore()


@pytest.fixture(params=[SlicingStrategy.MAX, SlicingStrategy.PERST])
def strategy(request):
    return request.param


def test_cp_cache_does_not_leak_live_periods_into_snapshot(stratum, strategy):
    """The pinned reader's sequenced results are byte-stable while the
    other session commits rows that change the constant periods."""
    db = stratum.db
    # warm every cache from the root session first
    baseline = raw(stratum.execute(SEQ, strategy=strategy))
    session = db.create_session("reader")
    root = db.root_txn
    db.activate_txn(session)
    stratum.execute("BEGIN")
    pinned = raw(stratum.execute(SEQ, strategy=strategy))
    assert pinned == baseline
    # the writer commits a row introducing new change points
    db.activate_txn(root)
    db.execute(
        "INSERT INTO author VALUES"
        " ('a3', 'Toni', 'Morrison', DATE '2010-04-15', DATE '2010-08-15')"
    )
    after = raw(stratum.execute(SEQ, strategy=strategy))
    assert after != baseline  # the live session sees the new history
    # the pinned reader re-runs through whatever the caches now hold —
    # and must still see exactly its snapshot
    db.activate_txn(session)
    assert raw(stratum.execute(SEQ, strategy=strategy)) == baseline
    assert raw(stratum.execute(SEQ, strategy=strategy)) == baseline
    stratum.execute("COMMIT")
    # a fresh snapshot finally observes the commit
    assert raw(stratum.execute(SEQ, strategy=strategy)) == after
    db.close_session(session)


def test_join_cp_sources_resolve_through_snapshot(stratum, strategy):
    db = stratum.db
    baseline = raw(stratum.execute(JOIN, strategy=strategy))
    session = db.create_session("reader")
    root = db.root_txn
    db.activate_txn(session)
    stratum.execute("BEGIN")
    assert raw(stratum.execute(JOIN, strategy=strategy)) == baseline
    db.activate_txn(root)
    db.execute(
        "INSERT INTO item VALUES"
        " ('i3', 'Book Three', 12.0, DATE '2010-05-01', DATE '9999-12-31')"
    )
    db.execute(
        "INSERT INTO item_author VALUES"
        " ('i3', 'a2', DATE '2010-05-01', DATE '9999-12-31')"
    )
    after = raw(stratum.execute(JOIN, strategy=strategy))
    assert after != baseline
    db.activate_txn(session)
    assert raw(stratum.execute(JOIN, strategy=strategy)) == baseline
    stratum.execute("COMMIT")
    db.close_session(session)
    assert raw(stratum.execute(JOIN, strategy=strategy)) == after


def test_plan_cache_serves_snapshot_reads(stratum):
    """A compiled plan warmed on the live table must not pin the reader
    to live rows (plans re-resolve their table per execution)."""
    db = stratum.db
    query = "SELECT first_name FROM author WHERE author_id = 'a1'"
    baseline = raw(db.execute(query))
    for _ in range(3):  # make sure the plan is compiled and cached
        assert raw(db.execute(query)) == baseline
    session = db.create_session("reader")
    root = db.root_txn
    db.activate_txn(session)
    db.execute("BEGIN")
    assert raw(db.execute(query)) == baseline
    db.activate_txn(root)
    db.execute("UPDATE author SET first_name = 'Changed' WHERE author_id = 'a1'")
    after = raw(db.execute(query))
    assert after != baseline
    db.activate_txn(session)
    # same SQL, same cached plan — different visible version
    assert raw(db.execute(query)) == baseline
    db.execute("COMMIT")
    assert raw(db.execute(query)) == after
    db.close_session(session)


def test_alternating_sessions_each_get_their_own_periods(stratum):
    """Interleaved sequenced executions from two differently-pinned
    sessions never cross-contaminate through the shared caches."""
    db = stratum.db
    first = raw(stratum.execute(SEQ, strategy=SlicingStrategy.MAX))
    session = db.create_session("reader")
    root = db.root_txn
    db.activate_txn(session)
    stratum.execute("BEGIN")
    assert raw(stratum.execute(SEQ, strategy=SlicingStrategy.MAX)) == first
    db.activate_txn(root)
    db.execute(
        "INSERT INTO author VALUES"
        " ('a4', 'Octavia', 'Butler', DATE '2010-07-01', DATE '9999-12-31')"
    )
    second = raw(stratum.execute(SEQ, strategy=SlicingStrategy.MAX))
    assert second != first
    # strict alternation, several rounds: every execution flips the
    # cp/transform caches between the two table versions
    for _ in range(3):
        db.activate_txn(session)
        assert raw(stratum.execute(SEQ, strategy=SlicingStrategy.MAX)) == first
        db.activate_txn(root)
        assert raw(stratum.execute(SEQ, strategy=SlicingStrategy.MAX)) == second
    db.activate_txn(session)
    stratum.execute("ROLLBACK")
    db.close_session(session)
