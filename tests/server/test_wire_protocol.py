"""Wire-protocol edge cases: torn frames, oversized frames, abrupt
disconnects, and per-session timeout isolation.

Each test spins up a real :class:`ReproServer` on an ephemeral port
inside ``asyncio.run`` (no pytest-asyncio in the image) and talks to it
with either the client library or a raw socket, depending on how badly
it needs to misbehave.
"""

import asyncio
import struct

import pytest

from repro.server import MAX_FRAME_BYTES, ReproClient, ReproServer, ServerError
from repro.server.protocol import FrameError, encode_frame, read_frame
from repro.temporal.stratum import TemporalStratum


def run(coro):
    return asyncio.run(coro)


async def start_server(setup_sql=()):
    stratum = TemporalStratum()
    for sql in setup_sql:
        stratum.execute(sql)
    server = ReproServer(stratum)
    host, port = await server.start()
    return stratum, server, host, port


SETUP = (
    "CREATE TABLE t (id INT, v VARCHAR(10))",
    "INSERT INTO t VALUES (1, 'a')",
)


def test_frame_roundtrip_and_split_delivery():
    async def scenario():
        # a frame delivered one byte at a time must still parse
        message = {"op": "execute", "sql": "SELECT 1"}
        data = encode_frame(message)
        reader = asyncio.StreamReader()
        for i in range(len(data)):
            reader.feed_data(data[i:i + 1])
        reader.feed_eof()
        assert await read_frame(reader) == message
        assert await read_frame(reader) is None  # clean EOF after

    run(scenario())


def test_torn_header_and_torn_payload_raise():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(b"\x00\x00")  # half a header
        reader.feed_eof()
        with pytest.raises(FrameError, match="mid-header"):
            await read_frame(reader)

        reader = asyncio.StreamReader()
        reader.feed_data(struct.pack(">I", 100) + b"{\"op\":")  # truncated
        reader.feed_eof()
        with pytest.raises(FrameError, match="mid-payload"):
            await read_frame(reader)

    run(scenario())


def test_oversized_frame_rejected_without_reading_it():
    async def scenario():
        _, server, host, port = await start_server()
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(struct.pack(">I", MAX_FRAME_BYTES + 1))
        await writer.drain()
        response = await read_frame(reader)
        assert response is not None and not response["ok"]
        assert "exceeds" in response["error"]
        # the server dropped the connection after reporting
        assert await read_frame(reader) is None
        writer.close()
        await server.shutdown()

    run(scenario())


def test_non_json_payload_rejected():
    async def scenario():
        _, server, host, port = await start_server()
        reader, writer = await asyncio.open_connection(host, port)
        junk = b"\xff\xfenot json"
        writer.write(struct.pack(">I", len(junk)) + junk)
        await writer.drain()
        response = await read_frame(reader)
        assert response is not None and not response["ok"]
        writer.close()
        await server.shutdown()

    run(scenario())


def test_abrupt_disconnect_mid_txn_rolls_back_and_unpins():
    async def scenario():
        stratum, server, host, port = await start_server(SETUP)
        db = stratum.db
        dropper = await ReproClient.connect(host, port)
        watcher = await ReproClient.connect(host, port)
        await dropper.execute("BEGIN")
        await dropper.execute("UPDATE t SET v = 'gone' WHERE id = 1")
        assert db.mvcc.pins
        # kill the socket without COMMIT or quit
        dropper._writer.close()
        # the surviving session sees the pre-image once the server
        # finishes tearing the dead session down
        for _ in range(100):
            result = await watcher.execute("SELECT v FROM t WHERE id = 1")
            if db.mvcc.quiescent():
                break
            await asyncio.sleep(0.01)
        assert result.rows == [["a"]]
        assert db.mvcc.quiescent()
        await watcher.close()
        await server.shutdown()
        # with every session gone, MVCC collapses to dormant: no pins,
        # no version chains left behind
        assert not db.mvcc.multi
        assert not db.mvcc.pins

    run(scenario())


def test_timeout_of_one_session_leaves_others_unaffected():
    async def scenario():
        stratum, server, host, port = await start_server(SETUP)
        limited = await ReproClient.connect(host, port)
        relaxed = await ReproClient.connect(host, port)
        await limited.set_timeout(1e-9)  # expires immediately
        with pytest.raises(ServerError) as excinfo:
            await limited.execute("SELECT COUNT(*) FROM t")
        assert excinfo.value.sqlstate == "57014"
        # the other session's statements still run with no deadline
        result = await relaxed.execute("SELECT COUNT(*) FROM t")
        assert result.scalar() == 1
        # and clearing it restores the limited session too
        await limited.set_timeout(None)
        result = await limited.execute("SELECT COUNT(*) FROM t")
        assert result.scalar() == 1
        # the server-side default was never touched
        assert stratum.db.resilience.statement_timeout is None
        await limited.close()
        await relaxed.close()
        await server.shutdown()

    run(scenario())


def test_serialization_error_carries_sqlstate_over_the_wire():
    async def scenario():
        _, server, host, port = await start_server(SETUP)
        writer_c = await ReproClient.connect(host, port)
        victim = await ReproClient.connect(host, port)
        await writer_c.execute("BEGIN")
        await writer_c.execute("UPDATE t SET v = 'w' WHERE id = 1")
        with pytest.raises(ServerError) as excinfo:
            await victim.execute("UPDATE t SET v = 'v' WHERE id = 1")
        assert excinfo.value.sqlstate == "40001"
        await writer_c.execute("COMMIT")
        # the classic client retry succeeds now
        await victim.execute("UPDATE t SET v = 'v' WHERE id = 1")
        result = await victim.execute("SELECT v FROM t WHERE id = 1")
        assert result.rows == [["v"]]
        await writer_c.close()
        await victim.close()
        await server.shutdown()

    run(scenario())


def test_snapshot_csn_reported_per_statement():
    async def scenario():
        _, server, host, port = await start_server(SETUP)
        a = await ReproClient.connect(host, port)
        b = await ReproClient.connect(host, port)
        await b.execute("BEGIN")
        await b.execute("SELECT v FROM t WHERE id = 1")
        pinned = b.last_snapshot
        await a.execute("UPDATE t SET v = 'x' WHERE id = 1")
        await a.execute("SELECT v FROM t WHERE id = 1")
        assert a.last_snapshot > pinned  # fresh snapshot saw the commit
        await b.execute("SELECT v FROM t WHERE id = 1")
        assert b.last_snapshot == pinned  # pinned transaction held its csn
        await b.execute("COMMIT")
        await a.close()
        await b.close()
        await server.shutdown()

    run(scenario())


def test_graceful_shutdown_rejects_new_connections():
    async def scenario():
        _, server, host, port = await start_server(SETUP)
        client = await ReproClient.connect(host, port)
        result = await client.execute("SELECT COUNT(*) FROM t")
        assert result.scalar() == 1
        await client.close()
        await server.shutdown()
        with pytest.raises(OSError):
            await asyncio.open_connection(host, port)

    run(scenario())
