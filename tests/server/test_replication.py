"""WAL-shipping replication: bootstrap, streaming, failover, scrubbing.

Every test runs a real primary :class:`ReproServer` and (usually) a
real standby server with a :class:`StandbyManager` tailing it over the
actual wire protocol, inside ``asyncio.run`` (no pytest-asyncio in the
image).  Durable stores live under ``tmp_path``.
"""

import asyncio
import struct

import pytest

from repro.server import (
    ReproClient,
    ReproServer,
    ServerError,
    StandbyManager,
    fingerprint_divergence,
    fingerprints_at,
    store_fingerprints,
)
from repro.server.protocol import FrameError, FramedReader, encode_frame
from repro.temporal.stratum import TemporalStratum


def run(coro):
    return asyncio.run(coro)


SETUP = (
    "CREATE TABLE pos (emp CHAR(20), title CHAR(30))",
    "ALTER TABLE pos ADD VALIDTIME",
    "INSERT INTO pos (emp, title) VALUES ('mia', 'eng')",
)


async def start_primary(path, setup=SETUP):
    stratum = TemporalStratum.open(path)
    server = ReproServer(stratum)
    host, port = await server.start()
    client = await ReproClient.connect(host, port)
    for sql in setup:
        await client.execute(sql)
    return stratum, server, client


async def start_standby(path, primary_server, **kwargs):
    stratum = TemporalStratum.open(path)
    server = ReproServer(stratum)
    await server.start()
    kwargs.setdefault("poll_wait", 0.5)
    manager = StandbyManager(
        server, primary_server.host, primary_server.port, **kwargs
    )
    await manager.start()
    client = await ReproClient.connect(server.host, server.port)
    return stratum, server, manager, client


def primary_seq(stratum):
    return stratum.db.durability.txn_counter


async def teardown(*pairs):
    """(client_or_None, server, stratum, checkpoint_bool) tuples."""
    for client, server, stratum, checkpoint in pairs:
        if client is not None:
            await client.close()
        await server.shutdown()
        stratum.db.close(checkpoint=checkpoint)


def test_bootstrap_catchup_and_replica_read(tmp_path):
    async def scenario():
        p_stratum, p_server, pc = await start_primary(tmp_path / "p")
        s_stratum, s_server, manager, sc = await start_standby(
            tmp_path / "s", p_server
        )
        result = await sc.execute(
            "VALIDTIME SELECT emp, title FROM pos",
            min_csn=primary_seq(p_stratum), wait=10.0,
        )
        assert [r[:2] for r in result.rows] == [["mia", "eng"]]
        # every replica response names the csn its snapshot read through
        assert sc.last_applied_csn == primary_seq(p_stratum)
        status = await sc.request({"op": "repl_status"}, retryable=False)
        assert status["role"] == "standby"
        assert status["lag_csn"] == 0
        assert status["connected"] is True
        assert status["primary_alive"] is True
        await teardown(
            (sc, s_server, s_stratum, False), (pc, p_server, p_stratum, True)
        )

    run(scenario())


def test_live_streaming_reaches_standby_without_reconnect(tmp_path):
    async def scenario():
        p_stratum, p_server, pc = await start_primary(tmp_path / "p")
        s_stratum, s_server, manager, sc = await start_standby(
            tmp_path / "s", p_server
        )
        for name in ("bo", "ada", "lou"):
            await pc.execute(
                f"INSERT INTO pos (emp, title) VALUES ('{name}', 'x')"
            )
        result = await sc.execute(
            "VALIDTIME SELECT emp FROM pos",
            min_csn=primary_seq(p_stratum), wait=10.0,
        )
        assert len(result.rows) == 4
        assert manager.reconnects == 0
        # a fresh gen-0 standby resumes from offset 0 (its local walhdr
        # is byte-identical to the primary's) — no snapshot bootstrap
        assert s_stratum.db.obs.value("replication.bootstraps") == 0
        await teardown(
            (sc, s_server, s_stratum, False), (pc, p_server, p_stratum, True)
        )

    run(scenario())


def test_min_csn_lag_timeout_is_sqlstate_55000(tmp_path):
    async def scenario():
        p_stratum, p_server, pc = await start_primary(tmp_path / "p")
        s_stratum, s_server, manager, sc = await start_standby(
            tmp_path / "s", p_server
        )
        with pytest.raises(ServerError) as excinfo:
            await sc.execute(
                "VALIDTIME SELECT emp FROM pos",
                min_csn=primary_seq(p_stratum) + 1000, wait=0.1,
            )
        assert excinfo.value.sqlstate == "55000"
        await teardown(
            (sc, s_server, s_stratum, False), (pc, p_server, p_stratum, True)
        )

    run(scenario())


def test_standby_refuses_writes_with_25006(tmp_path):
    async def scenario():
        p_stratum, p_server, pc = await start_primary(tmp_path / "p")
        s_stratum, s_server, manager, sc = await start_standby(
            tmp_path / "s", p_server
        )
        await sc.execute(
            "VALIDTIME SELECT emp FROM pos",
            min_csn=primary_seq(p_stratum), wait=10.0,
        )
        refused = (
            "INSERT INTO pos (emp, title) VALUES ('x', 'y')",
            "UPDATE pos SET title = 'z'",
            "DELETE FROM pos",
            "CREATE TABLE other (id INT)",
            "DROP TABLE pos",
            "EXPLAIN ANALYZE SELECT emp FROM pos",
        )
        for sql in refused:
            with pytest.raises(ServerError) as excinfo:
                await sc.execute(sql)
            assert excinfo.value.sqlstate == "25006", sql
        # reads, transactions of reads, and plain EXPLAIN still work
        await sc.execute("BEGIN")
        await sc.execute("SELECT emp FROM pos")
        await sc.execute("COMMIT")
        await sc.execute("EXPLAIN SELECT emp FROM pos")
        await teardown(
            (sc, s_server, s_stratum, False), (pc, p_server, p_stratum, True)
        )

    run(scenario())


def test_reconnect_resumes_from_offset_without_double_apply(tmp_path):
    async def scenario():
        p_stratum, p_server, pc = await start_primary(tmp_path / "p")
        s_stratum, s_server, manager, sc = await start_standby(
            tmp_path / "s", p_server,
            reconnect_base_delay=0.01, reconnect_max_delay=0.05,
        )
        await sc.execute(
            "VALIDTIME SELECT emp FROM pos",
            min_csn=primary_seq(p_stratum), wait=10.0,
        )
        # the primary dies mid-stream...
        port = p_server.port
        await pc.close()
        await p_server.shutdown()
        for _ in range(200):
            if not manager.connected:
                break
            await asyncio.sleep(0.01)
        # ...and comes back on the same address with more commits
        p_server2 = ReproServer(p_stratum, port=port)
        await p_server2.start()
        pc2 = await ReproClient.connect(p_server2.host, p_server2.port)
        await pc2.execute("INSERT INTO pos (emp, title) VALUES ('bo', 'mgr')")
        result = await sc.execute(
            "VALIDTIME SELECT emp FROM pos",
            min_csn=primary_seq(p_stratum), wait=10.0,
        )
        # resume, not re-bootstrap, and no row applied twice
        assert sorted(r[0].strip() for r in result.rows) == ["bo", "mia"]
        assert s_stratum.db.obs.value("replication.bootstraps") == 0
        assert manager.reconnects >= 1
        assert s_stratum.db.obs.value("replication.reconnects") >= 1
        await teardown(
            (sc, s_server, s_stratum, False),
            (pc2, p_server2, p_stratum, True),
        )

    run(scenario())


def test_promote_bumps_generation_and_accepts_writes(tmp_path):
    async def scenario():
        p_stratum, p_server, pc = await start_primary(tmp_path / "p")
        s_stratum, s_server, manager, sc = await start_standby(
            tmp_path / "s", p_server
        )
        await sc.execute(
            "VALIDTIME SELECT emp FROM pos",
            min_csn=primary_seq(p_stratum), wait=10.0,
        )
        old_generation = s_stratum.db.durability.generation
        response = await sc.request({"op": "promote"}, retryable=False)
        assert response["ok"]
        assert response["generation"] > old_generation
        assert s_server.standby is None
        # writes flow now, and a second promote is refused
        await sc.execute("INSERT INTO pos (emp, title) VALUES ('zo', 'ops')")
        result = await sc.execute("VALIDTIME SELECT emp FROM pos")
        assert len(result.rows) == 2
        refused = await sc.request({"op": "promote"}, retryable=False)
        assert not refused["ok"]
        await teardown(
            (sc, s_server, s_stratum, True), (pc, p_server, p_stratum, True)
        )

    run(scenario())


def test_primary_checkpoint_forces_standby_resync(tmp_path):
    async def scenario():
        p_stratum, p_server, pc = await start_primary(tmp_path / "p")
        s_stratum, s_server, manager, sc = await start_standby(
            tmp_path / "s", p_server
        )
        await sc.execute(
            "VALIDTIME SELECT emp FROM pos",
            min_csn=primary_seq(p_stratum), wait=10.0,
        )
        # checkpoint resets the primary's WAL and bumps its generation:
        # the standby's next chunk request must come back `resync`
        await p_server._db(p_stratum.checkpoint)
        await pc.execute("INSERT INTO pos (emp, title) VALUES ('bo', 'mgr')")
        result = await sc.execute(
            "VALIDTIME SELECT emp FROM pos",
            min_csn=primary_seq(p_stratum), wait=10.0,
        )
        assert sorted(r[0].strip() for r in result.rows) == ["bo", "mia"]
        assert s_stratum.db.obs.value("replication.bootstraps") >= 1
        assert (
            s_stratum.db.durability.generation
            == p_stratum.db.durability.generation
        )
        await teardown(
            (sc, s_server, s_stratum, False), (pc, p_server, p_stratum, True)
        )

    run(scenario())


def test_fingerprints_match_and_detect_divergence(tmp_path):
    async def scenario():
        p_stratum, p_server, pc = await start_primary(tmp_path / "p")
        s_stratum, s_server, manager, sc = await start_standby(
            tmp_path / "s", p_server
        )
        await sc.execute(
            "VALIDTIME SELECT emp FROM pos",
            min_csn=primary_seq(p_stratum), wait=10.0,
        )
        remote = await sc.request({"op": "repl_fingerprint"}, retryable=False)
        local = await pc.request({"op": "repl_fingerprint"}, retryable=False)
        assert fingerprint_divergence(local, remote) == []
        # a divergent standby is caught: flip one cell behind MVCC's back
        table = s_stratum.db.catalog.get_table("pos")
        tampered = dict(remote)
        tampered["tables"] = dict(remote["tables"])
        tampered["tables"]["pos"] = "0" * 64
        problems = fingerprint_divergence(local, tampered)
        assert any("pos" in p for p in problems)
        # and mismatched sequence numbers refuse to compare at all
        stale = dict(remote)
        stale["commit_seq"] = (remote["commit_seq"] or 0) + 7
        problems = fingerprint_divergence(local, stale)
        assert any("not comparable" in p for p in problems)
        assert table is not None
        await teardown(
            (sc, s_server, s_stratum, False), (pc, p_server, p_stratum, True)
        )

    run(scenario())


def test_fingerprints_at_replays_store_to_common_seq(tmp_path):
    async def scenario():
        p_stratum, p_server, pc = await start_primary(tmp_path / "p")
        seq_before = primary_seq(p_stratum)
        before = store_fingerprints(p_stratum.db, p_stratum)
        await pc.execute("INSERT INTO pos (emp, title) VALUES ('bo', 'mgr')")
        await pc.close()
        await p_server.shutdown()
        p_stratum.db.close(checkpoint=False)
        # offline, capped at the pre-insert seq: matches the old state
        capped = fingerprints_at(tmp_path / "p", seq_before)
        assert capped["commit_seq"] == seq_before
        assert fingerprint_divergence(capped, before) == []
        full = fingerprints_at(tmp_path / "p", seq_before + 1)
        assert full["commit_seq"] == seq_before + 1
        assert fingerprint_divergence(full, before) != []

    run(scenario())


def test_rid_echo_on_responses_and_errors(tmp_path):
    async def scenario():
        stratum, server, client = await start_primary(tmp_path / "p")
        reader, writer = await asyncio.open_connection(
            server.host, server.port
        )
        framed = FramedReader(reader)
        writer.write(encode_frame(
            {"op": "execute", "sql": "SELECT emp FROM pos", "rid": 41}
        ))
        writer.write(encode_frame({"op": "nonsense", "rid": 42}))
        await writer.drain()
        ok = await framed.read()
        bad = await framed.read()
        assert ok["ok"] and ok["rid"] == 41
        assert not bad["ok"] and bad["rid"] == 42
        writer.close()
        await teardown((client, server, stratum, True))

    run(scenario())


def test_frame_error_reports_stream_offset(tmp_path):
    async def scenario():
        # two clean frames, then a torn header: the error must name the
        # byte offset the bad frame began at, not asyncio internals
        good = encode_frame({"op": "ping"})
        reader = asyncio.StreamReader()
        reader.feed_data(good + good + b"\x00\x01")
        reader.feed_eof()
        framed = FramedReader(reader)
        assert await framed.read() == {"op": "ping"}
        assert await framed.read() == {"op": "ping"}
        with pytest.raises(FrameError) as excinfo:
            await framed.read()
        assert f"stream offset {2 * len(good)}" in str(excinfo.value)
        assert excinfo.value.offset == 2 * len(good)

    run(scenario())


def test_oversized_response_reported_as_54000_not_a_dead_socket():
    async def scenario():
        stratum = TemporalStratum()
        stratum.execute("CREATE TABLE big (v VARCHAR(4000000))")
        blob = "x" * 3_000_000
        for _ in range(4):
            stratum.execute(f"INSERT INTO big VALUES ('{blob}')")
        server = ReproServer(stratum)
        await server.start()
        client = await ReproClient.connect(server.host, server.port)
        with pytest.raises(ServerError) as excinfo:
            await client.execute("SELECT v FROM big")
        assert excinfo.value.sqlstate == "54000"
        # the connection survived: a reasonable statement still works
        result = await client.execute("SELECT COUNT(*) FROM big")
        assert result.scalar() == 4
        assert stratum.db.obs.value("server.frame_errors") == 0
        await client.close()
        await server.shutdown()

    run(scenario())


def test_cli_verify_against_running_node(tmp_path, capsys):
    """``repro verify --db COPY --against HOST:PORT`` — the cross-node
    scrub.  The CLI drives its own event loop, so the node under test
    runs in a background thread."""
    import queue
    import shutil
    import threading

    from repro.cli import run_verify

    stratum = TemporalStratum.open(tmp_path / "p")
    for sql in SETUP:
        stratum.execute(sql)

    ready: "queue.Queue" = queue.Queue()
    done = threading.Event()

    def serve():
        async def main():
            server = ReproServer(stratum)
            await server.start()
            loop = asyncio.get_running_loop()
            stop = asyncio.Event()
            ready.put((server.host, server.port, loop, stop))
            await server.serve_until(stop)

        asyncio.run(main())
        done.set()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    host, port, loop, stop = ready.get(timeout=10)
    try:
        # an identical copy at the same seq: consistent, exit 0
        shutil.copytree(tmp_path / "p", tmp_path / "copy")
        code = run_verify(
            ["--db", str(tmp_path / "copy"), "--against", f"{host}:{port}",
             "--wait", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "consistent with" in out

        # the node moves ahead; the stale copy can no longer reach a
        # common sequence number: exit 2, not a false "diverged"
        async def advance():
            client = await ReproClient.connect(host, port, reconnect=False)
            await client.execute(
                "INSERT INTO pos (emp, title) VALUES ('bo', 'mgr')"
            )
            await client.close()

        future = asyncio.run_coroutine_threadsafe(advance(), loop)
        future.result(timeout=10)
        code = run_verify(
            ["--db", str(tmp_path / "copy"), "--against", f"{host}:{port}",
             "--wait", "0.5"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "no common commit sequence" in err
    finally:
        loop.call_soon_threadsafe(stop.set)
        done.wait(timeout=10)
        stratum.db.close()


def test_client_auto_reconnects_reads_after_server_restart(tmp_path):
    async def scenario():
        stratum, server, client = await start_primary(tmp_path / "p")
        port = server.port
        result = await client.execute("SELECT COUNT(*) FROM pos")
        assert result.scalar() == 1
        await server.shutdown()
        server2 = ReproServer(stratum, port=port)
        await server2.start()
        # the read-only statement is silently retried on a new link
        result = await client.execute("SELECT COUNT(*) FROM pos")
        assert result.scalar() == 1
        assert client.reconnects == 1
        await teardown((client, server2, stratum, True))

    run(scenario())


def test_client_refuses_to_retry_writes_and_open_transactions(tmp_path):
    async def scenario():
        from repro.server import ConnectionLostError

        stratum, server, client = await start_primary(tmp_path / "p")
        port = server.port
        await server.shutdown()
        server2 = ReproServer(stratum, port=port)
        await server2.start()
        with pytest.raises(ConnectionLostError):
            await client.execute(
                "INSERT INTO pos (emp, title) VALUES ('x', 'y')"
            )
        # a drop inside an explicit transaction surfaces even for reads
        await client.execute("BEGIN")
        await client.execute("SELECT COUNT(*) FROM pos")
        await server2.shutdown()
        server3 = ReproServer(stratum, port=port)
        await server3.start()
        with pytest.raises(ConnectionLostError):
            await client.execute("SELECT COUNT(*) FROM pos")
        await teardown((client, server3, stratum, True))

    run(scenario())
