"""The stratum's transform cache: reuse across executions, invalidation
by registry changes, routine redefinition, and the ablation switch."""

import pytest

from repro.sqlengine.values import Date
from repro.temporal import SlicingStrategy, TemporalStratum

from tests.conftest import GET_AUTHOR_NAME, make_bookstore

SEQ_Q = (
    "VALIDTIME [DATE '2010-02-01', DATE '2010-07-01']"
    " SELECT first_name FROM author WHERE author_id = 'a1'"
)


@pytest.fixture
def stratum() -> TemporalStratum:
    return make_bookstore()


def counters(stratum):
    snap = stratum.db.stats.snapshot()
    return snap["transforms"], snap["transform_cache_hits"]


class TestReuse:
    @pytest.mark.parametrize(
        "strategy", [SlicingStrategy.MAX, SlicingStrategy.PERST]
    )
    def test_second_execution_hits(self, stratum, strategy):
        first = stratum.execute(SEQ_Q, strategy=strategy)
        transforms_before, hits_before = counters(stratum)
        second = stratum.execute(SEQ_Q, strategy=strategy)
        transforms_after, hits_after = counters(stratum)
        assert transforms_after == transforms_before  # no re-transform
        assert hits_after == hits_before + 1
        assert second.coalesced() == first.coalesced()

    def test_current_path_hits(self, stratum):
        query = "SELECT first_name FROM author WHERE author_id = 'a1'"
        first = stratum.execute(query)
        transforms_before, hits_before = counters(stratum)
        second = stratum.execute(query)
        transforms_after, hits_after = counters(stratum)
        assert transforms_after == transforms_before
        assert hits_after == hits_before + 1
        assert second.rows == first.rows == [["Ben"]]

    def test_hit_reflects_data_changes(self, stratum):
        """The cache reuses the *transformation*, never the result."""
        before = stratum.execute(SEQ_Q, strategy=SlicingStrategy.MAX)
        stratum.db.execute(
            "UPDATE author SET first_name = 'Benny'"
            " WHERE author_id = 'a1' AND first_name = 'Ben'"
        )
        after = stratum.execute(SEQ_Q, strategy=SlicingStrategy.MAX)
        assert {v for (v,), _ in before.coalesced()} == {"Ben", "Benjamin"}
        assert {v for (v,), _ in after.coalesced()} == {"Benny", "Benjamin"}


class TestInvalidation:
    def test_add_validtime_is_never_stale(self, stratum):
        """A registry change must retransform: after `u` gains valid
        time, the cached current transformation (which read `u` raw)
        would wrongly return its closed-out row."""
        db = stratum.db
        db.execute("CREATE TABLE u (author_id CHAR(10), rating INTEGER)")
        db.execute("INSERT INTO u VALUES ('a1', 5)")
        db.execute("INSERT INTO u VALUES ('a2', 3)")
        query = (
            "SELECT a.first_name, u.rating FROM author AS a, u"
            " WHERE a.author_id = u.author_id"
        )
        first = stratum.execute(query)
        assert sorted(first.rows) == [["Ben", 5], ["Rosa", 3]]
        stratum.execute("ALTER TABLE u ADD VALIDTIME")
        # close out a2's rating before `now` (2010-04-01)
        db.execute(
            "UPDATE u SET end_time = DATE '2010-03-01' WHERE author_id = 'a2'"
        )
        second = stratum.execute(query)
        assert sorted(second.rows) == [["Ben", 5]]

    def test_routine_redefinition_is_never_stale(self, stratum):
        stratum.register_routine(GET_AUTHOR_NAME)
        query = (
            "VALIDTIME [DATE '2010-02-01', DATE '2010-07-01']"
            " SELECT get_author_name(author_id) FROM author"
            " WHERE author_id = 'a1'"
        )
        first = stratum.execute(query, strategy=SlicingStrategy.MAX)
        assert {v for (v,), _ in first.coalesced()} == {"Ben", "Benjamin"}
        stratum.db.catalog.drop_routine("get_author_name")
        stratum.register_routine(
            GET_AUTHOR_NAME.replace(
                "SET fname = (SELECT first_name FROM author"
                " WHERE author_id = aid);",
                "SET fname = 'redefined';",
            )
        )
        second = stratum.execute(query, strategy=SlicingStrategy.MAX)
        assert {v for (v,), _ in second.coalesced()} == {"redefined"}

    def test_transaction_clock_is_part_of_the_key(self, stratum):
        """Time travel embeds the clock as a literal; a cached transform
        from another clock value must not be served."""
        db = stratum.db
        db.execute("CREATE TABLE audit (note CHAR(20))")
        stratum.execute("ALTER TABLE audit ADD TRANSACTIONTIME")
        stratum.execute("INSERT INTO audit VALUES ('first')")
        db.now = Date.from_ymd(2010, 5, 1)
        stratum.execute("UPDATE audit SET note = 'second'")
        query = "SELECT note FROM audit"
        assert stratum.execute(query).rows == [["second"]]
        stratum.transaction_clock = Date.from_ymd(2010, 4, 15)
        assert stratum.execute(query).rows == [["first"]]
        stratum.transaction_clock = None
        assert stratum.execute(query).rows == [["second"]]


class TestAblationSwitch:
    def test_disabled_retransforms_every_time(self, stratum):
        stratum.db.plan_caching_enabled = False
        first = stratum.execute(SEQ_Q, strategy=SlicingStrategy.MAX)
        transforms_before, hits_before = counters(stratum)
        second = stratum.execute(SEQ_Q, strategy=SlicingStrategy.MAX)
        transforms_after, hits_after = counters(stratum)
        assert transforms_after == transforms_before + 1
        assert hits_after == hits_before
        assert second.coalesced() == first.coalesced()


class TestLruEviction:
    """Capacity pressure evicts the least recently used entry, not the
    whole cache — a hot transformation must survive a flood of one-off
    statements."""

    def filler(self, i):
        return (
            "VALIDTIME [DATE '2010-02-01', DATE '2010-07-01']"
            f" SELECT first_name FROM author WHERE last_name = 'f{i}'"
        )

    def test_hot_key_survives_capacity_pressure(self, stratum):
        stratum.TRANSFORM_CACHE_CAPACITY = 4
        stratum.execute(SEQ_Q, strategy=SlicingStrategy.MAX)
        for i in range(8):
            stratum.execute(self.filler(i), strategy=SlicingStrategy.MAX)
            # touching the hot key between fillers refreshes its recency
            stratum.execute(SEQ_Q, strategy=SlicingStrategy.MAX)
        assert len(stratum._transform_cache) <= 4
        transforms_before, hits_before = counters(stratum)
        stratum.execute(SEQ_Q, strategy=SlicingStrategy.MAX)
        transforms_after, hits_after = counters(stratum)
        assert transforms_after == transforms_before  # still cached
        assert hits_after == hits_before + 1

    def test_evicts_oldest_untouched_entry(self, stratum):
        stratum.TRANSFORM_CACHE_CAPACITY = 4
        statements = [self.filler(i) for i in range(4)]
        for statement in statements:
            stratum.execute(statement, strategy=SlicingStrategy.MAX)
        # refresh filler 0, then overflow: filler 1 is now the oldest
        stratum.execute(statements[0], strategy=SlicingStrategy.MAX)
        stratum.execute(self.filler(99), strategy=SlicingStrategy.MAX)
        transforms_before, _ = counters(stratum)
        stratum.execute(statements[0], strategy=SlicingStrategy.MAX)  # hit
        assert counters(stratum)[0] == transforms_before
        stratum.execute(statements[1], strategy=SlicingStrategy.MAX)  # evicted
        assert counters(stratum)[0] == transforms_before + 1
