"""Static-analysis tests: reachability, inner modifiers, PERST checks."""

import pytest

from repro.sqlengine.parser import parse_statement
from repro.temporal import analysis
from repro.temporal.errors import PerStatementInapplicableError

from tests.conftest import GET_AUTHOR_NAME, make_bookstore


@pytest.fixture
def stratum():
    s = make_bookstore()
    s.register_routine(GET_AUTHOR_NAME)
    return s


class TestTableReferences:
    def test_direct_tables(self, stratum):
        stmt = parse_statement("SELECT 1 FROM item i, item_author ia")
        assert analysis.referenced_tables(stmt) == {"item", "item_author"}

    def test_subquery_tables_included(self, stratum):
        stmt = parse_statement(
            "SELECT 1 FROM item WHERE EXISTS (SELECT 1 FROM author)"
        )
        assert "author" in analysis.referenced_tables(stmt)

    def test_dml_targets_included(self, stratum):
        stmt = parse_statement("UPDATE item SET title = 'x'")
        assert analysis.referenced_tables(stmt) == {"item"}

    def test_reachable_through_function(self, stratum):
        stmt = parse_statement(
            "SELECT 1 FROM item_author ia WHERE get_author_name(ia.author_id) = 'Ben'"
        )
        tables = analysis.reachable_tables(stmt, stratum.db.catalog)
        assert "author" in tables  # only referenced inside the function
        assert "item_author" in tables

    def test_reachable_routines_transitive(self, stratum):
        stratum.register_routine(
            "CREATE FUNCTION outer_fn (aid CHAR(10)) RETURNS CHAR(50)"
            " READS SQL DATA LANGUAGE SQL BEGIN"
            " RETURN get_author_name(aid); END"
        )
        stmt = parse_statement("SELECT outer_fn('a1')")
        routines = analysis.reachable_routines(stmt, stratum.db.catalog)
        assert routines == ["outer_fn", "get_author_name"]

    def test_reads_temporal(self, stratum):
        stmt = parse_statement("SELECT get_author_name('a1')")
        assert analysis.reads_temporal(stmt, stratum.db.catalog, stratum.registry)

    def test_non_temporal_statement(self, stratum):
        stratum.db.execute("CREATE TABLE plain (x INTEGER)")
        stmt = parse_statement("SELECT x FROM plain")
        assert not analysis.reads_temporal(stmt, stratum.db.catalog, stratum.registry)

    def test_routine_reads_temporal(self, stratum):
        assert analysis.routine_reads_temporal(
            "get_author_name", stratum.db.catalog, stratum.registry
        )


class TestInnerModifiers:
    def test_detects_inner_modifier(self, stratum):
        stmt = parse_statement(
            "CREATE PROCEDURE p () LANGUAGE SQL BEGIN"
            " VALIDTIME SELECT title FROM item; END"
        )
        assert analysis.has_inner_modifier(stmt.body)

    def test_no_modifier(self, stratum):
        stmt = parse_statement(
            "CREATE PROCEDURE p () LANGUAGE SQL BEGIN"
            " SELECT title FROM item; END"
        )
        assert not analysis.has_inner_modifier(stmt.body)


def _install(stratum, sql):
    stratum.register_routine(sql)


class TestPerstApplicability:
    def test_plain_query_applicable(self, stratum):
        stmt = parse_statement(
            "SELECT 1 FROM item_author ia WHERE get_author_name(ia.author_id) = 'Ben'"
        )
        analysis.check_perst_applicable(stmt, stratum.db.catalog, stratum.registry)

    def test_fetch_before_temporal_call_applicable(self, stratum):
        """q17's shape: FETCH at the top of the loop is fine."""
        _install(stratum, """
        CREATE FUNCTION walker () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE iid CHAR(10);
          DECLARE done INTEGER DEFAULT 0;
          DECLARE n INTEGER DEFAULT 0;
          DECLARE c CURSOR FOR SELECT id FROM item;
          DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
          OPEN c;
          w: WHILE done = 0 DO
            FETCH c INTO iid;
            IF get_author_name(iid) = 'Ben' THEN SET n = n + 1; END IF;
          END WHILE w;
          CLOSE c;
          RETURN n;
        END
        """)
        stmt = parse_statement("SELECT walker()")
        analysis.check_perst_applicable(stmt, stratum.db.catalog, stratum.registry)

    def test_non_nested_fetch_rejected(self, stratum):
        """q17b's shape: FETCH after a temporal producer in the loop."""
        _install(stratum, """
        CREATE FUNCTION walker2 () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE iid CHAR(10);
          DECLARE done INTEGER DEFAULT 0;
          DECLARE n INTEGER DEFAULT 0;
          DECLARE c CURSOR FOR SELECT id FROM item;
          DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
          OPEN c;
          FETCH c INTO iid;
          w: WHILE done = 0 DO
            IF get_author_name(iid) = 'Ben' THEN SET n = n + 1; END IF;
            FETCH c INTO iid;
          END WHILE w;
          CLOSE c;
          RETURN n;
        END
        """)
        stmt = parse_statement("SELECT walker2()")
        with pytest.raises(PerStatementInapplicableError):
            analysis.check_perst_applicable(
                stmt, stratum.db.catalog, stratum.registry
            )

    def test_fetch_of_loop_local_cursor_fine(self, stratum):
        """A cursor declared inside the loop's own compound is not outer."""
        _install(stratum, """
        CREATE FUNCTION walker3 () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE n INTEGER DEFAULT 0;
          DECLARE k INTEGER DEFAULT 0;
          w: WHILE k < 2 DO
            SET k = k + 1;
            BEGIN
              DECLARE iid CHAR(10);
              DECLARE done INTEGER DEFAULT 0;
              DECLARE c CURSOR FOR SELECT id FROM item;
              DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
              OPEN c;
              IF get_author_name('a1') = 'Ben' THEN SET n = n + 1; END IF;
              FETCH c INTO iid;
              CLOSE c;
            END;
          END WHILE w;
          RETURN n;
        END
        """)
        stmt = parse_statement("SELECT walker3()")
        # the FETCH follows a temporal producer, but its cursor is local
        # to the same compound, so per-period evaluation is consistent
        analysis.check_perst_applicable(stmt, stratum.db.catalog, stratum.registry)


class TestRoutinesWithInnerModifiers:
    def test_flags_routines(self, stratum):
        stratum.db.catalog.drop_routine("get_author_name")
        from repro.sqlengine.catalog import Routine

        definition = parse_statement(
            "CREATE PROCEDURE audit () LANGUAGE SQL BEGIN"
            " NONSEQUENCED VALIDTIME SELECT title, begin_time FROM item; END"
        )
        stratum.db.catalog.add_routine(
            Routine(kind="PROCEDURE", definition=definition)
        )
        stmt = parse_statement("CALL audit()")
        assert analysis.routines_with_inner_modifiers(
            stmt, stratum.db.catalog
        ) == ["audit"]
