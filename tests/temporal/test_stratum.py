"""Stratum-level behavior: modifiers, contexts, strategy selection."""

import pytest

from repro.sqlengine.errors import CatalogError
from repro.sqlengine.values import Date
from repro.temporal import SlicingStrategy, TemporalResult, TemporalStratum
from repro.temporal.errors import SequencedContextError, TemporalError
from repro.temporal.period import Period

from tests.conftest import GET_AUTHOR_NAME, make_bookstore


@pytest.fixture
def stratum():
    s = make_bookstore()
    s.register_routine(GET_AUTHOR_NAME)
    return s


class TestRegistration:
    def test_create_temporal_table_registers(self, stratum):
        assert stratum.registry.is_temporal("author")
        assert stratum.registry.is_temporal("ITEM")

    def test_add_validtime_adds_missing_columns(self):
        s = TemporalStratum()
        s.db.execute("CREATE TABLE t (x INTEGER)")
        s.db.execute("INSERT INTO t VALUES (1)")
        s.execute("ALTER TABLE t ADD VALIDTIME")
        assert s.registry.is_temporal("t")
        row = s.db.catalog.get_table("t").rows[0]
        assert row[1] == Date(Date.MIN_ORDINAL)
        assert row[2] == Date(Date.MAX_ORDINAL)

    def test_add_validtime_requires_date_columns(self):
        s = TemporalStratum()
        s.db.execute("CREATE TABLE t (x INTEGER, begin_time INTEGER, end_time DATE)")
        with pytest.raises(CatalogError):
            s.execute("ALTER TABLE t ADD VALIDTIME")

    def test_reregistering_routine_replaces(self, stratum):
        stratum.db.catalog.drop_routine("get_author_name")
        stratum.register_routine(GET_AUTHOR_NAME)
        assert stratum.db.catalog.has_routine("get_author_name")


class TestTemporalResult:
    def test_value_columns(self, stratum):
        result = stratum.execute(
            "VALIDTIME [DATE '2010-02-01', DATE '2010-03-01']"
            " SELECT first_name FROM author WHERE author_id = 'a1'",
            strategy=SlicingStrategy.MAX,
        )
        assert isinstance(result, TemporalResult)
        assert result.value_columns == ["first_name"]
        assert result.columns[-2:] == ["begin_time", "end_time"]

    def test_temporal_rows(self, stratum):
        result = stratum.execute(
            "VALIDTIME [DATE '2010-02-01', DATE '2010-03-01']"
            " SELECT first_name FROM author WHERE author_id = 'a1'",
            strategy=SlicingStrategy.MAX,
        )
        for values, period in result.temporal_rows():
            assert values == ("Ben",)
            assert isinstance(period, Period)


class TestContexts:
    def test_explicit_context_evaluated(self, stratum):
        result = stratum.execute(
            "VALIDTIME [DATE '2010-06-01', DATE '2010-07-01']"
            " SELECT first_name FROM author WHERE author_id = 'a1'",
            strategy=SlicingStrategy.MAX,
        )
        assert result.coalesced() == [
            (("Benjamin",), Period.from_iso("2010-06-01", "2010-07-01"))
        ]

    def test_bad_context_bounds_raise(self, stratum):
        with pytest.raises(TemporalError):
            stratum.execute(
                "VALIDTIME [1, 2] SELECT first_name FROM author",
                strategy=SlicingStrategy.MAX,
            )

    def test_empty_context_raises(self, stratum):
        with pytest.raises(Exception):
            stratum.execute(
                "VALIDTIME [DATE '2010-06-01', DATE '2010-06-01']"
                " SELECT first_name FROM author",
                strategy=SlicingStrategy.MAX,
            )


class TestAutoStrategy:
    def test_auto_routine_free_is_seqset(self, stratum):
        """Rule (s): a routine-free covered query takes the set-oriented
        plan ahead of the paper's MAX/PERST rules."""
        stratum.execute(
            "VALIDTIME [DATE '2010-02-01', DATE '2010-02-08']"
            " SELECT first_name FROM author WHERE author_id = 'a1'",
            strategy=SlicingStrategy.AUTO,
        )
        assert stratum.last_strategy is SlicingStrategy.SEQSET

    def test_auto_picks_and_records(self, stratum):
        stratum.execute(
            "VALIDTIME [DATE '2010-02-01', DATE '2010-02-08']"
            " SELECT get_author_name('a1') AS name FROM author",
            strategy=SlicingStrategy.AUTO,
        )
        assert stratum.last_strategy in (SlicingStrategy.MAX, SlicingStrategy.PERST)

    def test_auto_small_short_context_is_max(self, stratum):
        """§VII-F rule (c): small database and short context.  The query
        invokes a routine so rule (s) does not short-circuit."""
        stratum.execute(
            "VALIDTIME [DATE '2010-02-01', DATE '2010-02-03']"
            " SELECT get_author_name('a1') AS name FROM author",
            strategy=SlicingStrategy.AUTO,
        )
        assert stratum.last_strategy is SlicingStrategy.MAX


class TestInnerModifierRules:
    """§IV-A: explicit modifiers inside routines → nonsequenced-only."""

    def _register_audit(self, stratum):
        stratum.register_routine(
            "CREATE PROCEDURE audit () LANGUAGE SQL BEGIN"
            " VALIDTIME [DATE '2010-01-01', DATE '2010-12-01']"
            " SELECT first_name FROM author; END"
        )

    def test_sequenced_invocation_rejected(self, stratum):
        self._register_audit(stratum)
        with pytest.raises(SequencedContextError):
            stratum.execute(
                "VALIDTIME CALL audit()", strategy=SlicingStrategy.MAX
            )

    def test_current_invocation_rejected(self, stratum):
        self._register_audit(stratum)
        with pytest.raises(SequencedContextError):
            stratum.execute("CALL audit()")

    def test_nonsequenced_invocation_allowed(self, stratum):
        self._register_audit(stratum)
        results = stratum.execute("NONSEQUENCED VALIDTIME CALL audit()")
        assert len(results) == 1
        # the inner VALIDTIME SELECT ran with sequenced semantics
        names = {row[0] for row in results[0].rows}
        assert "Ben" in names and "Benjamin" in names


class TestTransformInspection:
    def test_transform_current(self, stratum):
        result = stratum.transform(
            "SELECT first_name FROM author WHERE author_id = 'a1'"
        )
        assert "CURRENT_DATE" in result.to_sql()

    def test_transform_max(self, stratum):
        result = stratum.transform(
            "VALIDTIME SELECT get_author_name('a1') FROM item",
            SlicingStrategy.MAX,
        )
        assert "max_get_author_name" in result.to_sql()

    def test_transform_perst(self, stratum):
        result = stratum.transform(
            "VALIDTIME SELECT get_author_name('a1') FROM item",
            SlicingStrategy.PERST,
        )
        assert "ps_get_author_name" in result.to_sql()

    def test_transform_nonsequenced_strips_modifier(self, stratum):
        result = stratum.transform(
            "NONSEQUENCED VALIDTIME SELECT begin_time FROM author"
        )
        assert "VALIDTIME" not in result.to_sql()


class TestStrategyConsistency:
    def test_max_and_perst_agree_on_function_query(self, stratum):
        sql = (
            "VALIDTIME [DATE '2010-01-01', DATE '2010-10-01']"
            " SELECT i.title FROM item i, item_author ia"
            " WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'"
        )
        left = stratum.execute(sql, strategy=SlicingStrategy.MAX).coalesced()
        right = stratum.execute(sql, strategy=SlicingStrategy.PERST).coalesced()
        assert left == right

    def test_repeated_execution_stable(self, stratum):
        sql = (
            "VALIDTIME [DATE '2010-02-01', DATE '2010-03-01']"
            " SELECT first_name FROM author WHERE author_id = 'a1'"
        )
        first = stratum.execute(sql, strategy=SlicingStrategy.PERST).coalesced()
        second = stratum.execute(sql, strategy=SlicingStrategy.PERST).coalesced()
        assert first == second

    def test_data_change_between_executions_reflected(self, stratum):
        sql = (
            "VALIDTIME [DATE '2010-02-01', DATE '2010-03-01']"
            " SELECT first_name FROM author WHERE author_id = 'a9'"
        )
        assert stratum.execute(sql, strategy=SlicingStrategy.MAX).coalesced() == []
        stratum.db.execute(
            "INSERT INTO author VALUES ('a9', 'New', 'Author',"
            " DATE '2010-01-01', DATE '9999-12-31')"
        )
        merged = stratum.execute(sql, strategy=SlicingStrategy.MAX).coalesced()
        assert merged == [(("New",), Period.from_iso("2010-02-01", "2010-03-01"))]
