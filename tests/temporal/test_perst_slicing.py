"""Per-statement slicing tests (paper §VI, Figure 11)."""

import pytest

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.parser import parse_statement
from repro.temporal import SlicingStrategy
from repro.temporal.errors import PerStatementInapplicableError
from repro.temporal.period import Period
from repro.temporal.perst_slicing import PerstTransformer

from tests.conftest import GET_AUTHOR_NAME, make_bookstore

SEQ_Q2 = (
    "VALIDTIME [DATE '2010-01-01', DATE '2010-10-01']"
    " SELECT i.title FROM item i, item_author ia"
    " WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'"
)


@pytest.fixture
def stratum():
    s = make_bookstore()
    s.register_routine(GET_AUTHOR_NAME)
    return s


def transform(stratum, sql):
    return PerstTransformer(stratum.db.catalog, stratum.registry).transform(
        parse_statement(sql)
    )


class TestSignatureTransform:
    """§VI-A: evaluation period in, temporal table out."""

    def test_function_signature(self, stratum):
        result = transform(stratum, SEQ_Q2)
        clone = result.routines[0]
        sql = clone.to_sql()
        assert "ps_get_author_name (aid CHAR(10), ps_begin DATE, ps_end DATE)" in sql
        assert (
            "RETURNS ROW(taupsm_result CHAR(50), begin_time DATE, end_time DATE) ARRAY"
            in sql
        )

    def test_variable_becomes_temporal_table(self, stratum):
        sql = transform(stratum, SEQ_Q2).routines[0].to_sql()
        assert "DECLARE fname ROW(fname CHAR(50), begin_time DATE, end_time DATE) ARRAY" in sql

    def test_set_becomes_delete_then_insert(self, stratum):
        sql = transform(stratum, SEQ_Q2).routines[0].to_sql()
        assert "DELETE FROM fname" in sql
        assert "INSERT INTO fname SELECT first_name" in sql
        assert "LAST_INSTANCE(author.begin_time, ps_begin)" in sql
        assert "FIRST_INSTANCE(author.end_time, ps_end)" in sql

    def test_return_alias_optimization(self, stratum):
        """Returning a bare variable returns its table directly (§VI-B)."""
        sql = transform(stratum, SEQ_Q2).routines[0].to_sql()
        assert "RETURN fname" in sql
        assert "INSERT INTO ps_return_tb" not in sql

    def test_invoking_query_matches_figure_11(self, stratum):
        sql = transform(stratum, SEQ_Q2).statement.to_sql()
        assert "TABLE(ps_get_author_name(ia.author_id, ps_begin, ps_end))" in sql
        assert "taupsm_result = 'Ben'" in sql
        assert "LAST_INSTANCE" in sql and "FIRST_INSTANCE" in sql


class TestStatementTransforms:
    def test_multiple_sets_join_variable_tables(self, stratum):
        stratum.register_routine("""
        CREATE FUNCTION full_name (aid CHAR(10)) RETURNS CHAR(90)
        READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE fn CHAR(40);
          DECLARE ln CHAR(40);
          SET fn = (SELECT first_name FROM author WHERE author_id = aid);
          SET ln = (SELECT last_name FROM author WHERE author_id = aid);
          RETURN fn || ' ' || ln;
        END
        """)
        result = transform(stratum, "VALIDTIME SELECT full_name('a1') FROM item")
        clone = next(r for r in result.routines if r.name == "ps_full_name")
        sql = clone.to_sql()
        # the RETURN expression joins both variable tables on period overlap
        assert "FROM fn" in sql and "ln" in sql
        assert "INSERT INTO ps_return_tb" in sql

    def test_return_scalar_subquery(self, stratum):
        stratum.register_routine("""
        CREATE FUNCTION direct (aid CHAR(10)) RETURNS CHAR(40)
        READS SQL DATA LANGUAGE SQL
        BEGIN
          RETURN (SELECT first_name FROM author WHERE author_id = aid);
        END
        """)
        result = transform(stratum, "VALIDTIME SELECT direct('a1') FROM item")
        sql = next(r for r in result.routines if r.name == "ps_direct").to_sql()
        assert "INSERT INTO ps_return_tb SELECT first_name" in sql

    def test_temporal_if_uses_loop_fallback(self, stratum):
        stratum.register_routine("""
        CREATE FUNCTION pricy (iid CHAR(10)) RETURNS CHAR(10)
        READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE p FLOAT;
          DECLARE flag CHAR(10);
          SET p = (SELECT price FROM item WHERE id = iid);
          IF p > 50.0 THEN
            SET flag = 'high';
          ELSE
            SET flag = 'low';
          END IF;
          RETURN flag;
        END
        """)
        result = transform(stratum, "VALIDTIME SELECT pricy('i1') FROM item")
        clone = next(r for r in result.routines if r.name == "ps_pricy")
        sql = clone.to_sql()
        assert "FOR taupsm_cp AS" in sql  # §VI-C per-statement loop
        assert result.cp_requirements  # stratum must materialize cp

    def test_cursor_body_mode(self, stratum):
        stratum.register_routine("""
        CREATE FUNCTION count_titles (aid CHAR(10)) RETURNS INTEGER
        READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE done INTEGER DEFAULT 0;
          DECLARE t CHAR(100);
          DECLARE n INTEGER DEFAULT 0;
          DECLARE c CURSOR FOR
            SELECT i.title FROM item i, item_author ia
            WHERE i.id = ia.item_id AND ia.author_id = aid;
          DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
          OPEN c;
          w: WHILE done = 0 DO
            FETCH c INTO t;
            IF done = 0 THEN SET n = n + 1; END IF;
          END WHILE w;
          CLOSE c;
          RETURN n;
        END
        """)
        result = transform(
            stratum, "VALIDTIME SELECT count_titles('a1') FROM author"
        )
        clone = next(r for r in result.routines if r.name == "ps_count_titles")
        sql = clone.to_sql()
        assert "FOR taupsm_cp AS" in sql
        assert "CREATE TEMPORARY TABLE taupsm_aux_c" in sql  # aux per period
        assert "taupsm_once: LOOP" in sql
        assert "INSERT INTO ps_return_tb" in sql

    def test_row_array_function_gains_period_columns(self, stratum):
        stratum.register_routine("""
        CREATE FUNCTION list_names (aid CHAR(10))
        RETURNS ROW(fname CHAR(40)) ARRAY
        READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE result ROW(fname CHAR(40)) ARRAY;
          INSERT INTO TABLE result (
            SELECT first_name FROM author WHERE author_id = aid);
          RETURN result;
        END
        """)
        result = transform(
            stratum,
            "VALIDTIME SELECT f.fname FROM TABLE(list_names('a1')) AS f",
        )
        clone = next(r for r in result.routines if r.name == "ps_list_names")
        assert "RETURNS ROW(fname CHAR(40), begin_time DATE, end_time DATE) ARRAY" in clone.to_sql()
        top = result.statement.to_sql()
        assert "TABLE(ps_list_names('a1', ps_begin, ps_end))" in top


class TestInapplicability:
    def test_self_referential_assignment_rejected(self, stratum):
        stratum.register_routine("""
        CREATE FUNCTION acc (aid CHAR(10)) RETURNS FLOAT
        READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE p FLOAT;
          SET p = (SELECT price FROM item WHERE id = aid);
          SET p = p + 1.0;
          SET p = p * 2.0;
          RETURN p;
        END
        """)
        with pytest.raises(PerStatementInapplicableError):
            transform(stratum, "VALIDTIME SELECT acc('i1') FROM item")

    def test_scalar_var_from_temporal_rejected_without_tv(self, stratum):
        # an OUT parameter made time-varying is rejected for procedures
        stratum.register_routine("""
        CREATE PROCEDURE fetch_price (iid CHAR(10), OUT p FLOAT)
        LANGUAGE SQL
        BEGIN
          SET p = (SELECT price FROM item WHERE id = iid);
        END
        """)
        with pytest.raises(PerStatementInapplicableError):
            transform(stratum, "VALIDTIME CALL fetch_price('i1', x)")


class TestExecution:
    def test_q2_history(self, stratum):
        result = stratum.execute(SEQ_Q2, strategy=SlicingStrategy.PERST)
        merged = result.coalesced()
        assert (("Book One",), Period.from_iso("2010-01-15", "2010-06-01")) in merged
        assert len(merged) == 2

    def test_routine_called_far_fewer_times_than_max(self, stratum):
        stats = stratum.db.stats
        stats.reset()
        stratum.execute(SEQ_Q2, strategy=SlicingStrategy.MAX)
        max_calls = stats.routine_calls["max_get_author_name"]
        stats.reset()
        stratum.execute(SEQ_Q2, strategy=SlicingStrategy.PERST)
        perst_calls = stats.routine_calls["ps_get_author_name"]
        assert perst_calls < max_calls  # the paper's central cost asymmetry

    def test_sequenced_call_procedure(self, stratum):
        stratum.register_routine(
            "CREATE PROCEDURE names () LANGUAGE SQL BEGIN"
            " SELECT first_name FROM author WHERE author_id = 'a1'; END"
        )
        results = stratum.execute(
            "VALIDTIME [DATE '2010-05-01', DATE '2010-07-01'] CALL names()",
            strategy=SlicingStrategy.PERST,
        )
        merged = results[0].coalesced()
        assert (("Ben",), Period.from_iso("2010-05-01", "2010-06-01")) in merged
        assert (("Benjamin",), Period.from_iso("2010-06-01", "2010-07-01")) in merged

    def test_variable_gap_produces_no_rows(self, stratum):
        """A variable undefined at some granules yields no result there."""
        stratum.register_routine("""
        CREATE FUNCTION title_of (iid CHAR(10)) RETURNS CHAR(100)
        READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE t CHAR(100);
          SET t = (SELECT title FROM item WHERE id = iid);
          RETURN t;
        END
        """)
        result = stratum.execute(
            "VALIDTIME [DATE '2010-01-01', DATE '2010-12-01']"
            " SELECT title_of('i2') FROM author WHERE author_id = 'a2'",
            strategy=SlicingStrategy.PERST,
        )
        merged = result.coalesced()
        # i2 exists only [2010-03-01, 2010-09-01)
        assert merged == [
            (("Book Two",), Period.from_iso("2010-03-01", "2010-09-01"))
        ]
