"""Views with temporal modifiers in their bodies (paper §III)."""

import pytest

from repro.sqlengine.values import Date
from repro.temporal.errors import TemporalError
from repro.temporal.period import Period, coalesce

from tests.conftest import GET_AUTHOR_NAME, make_bookstore


@pytest.fixture
def stratum():
    s = make_bookstore()
    s.register_routine(GET_AUTHOR_NAME)
    return s


class TestSequencedViews:
    def test_view_rows_carry_periods(self, stratum):
        stratum.execute(
            "CREATE VIEW name_history AS ("
            "VALIDTIME [DATE '2010-01-01', DATE '2010-12-01']"
            " SELECT first_name FROM author WHERE author_id = 'a1')"
        )
        rows = stratum.execute(
            "NONSEQUENCED VALIDTIME SELECT first_name, begin_time, end_time"
            " FROM name_history ORDER BY begin_time"
        ).rows
        assert [(r[0], r[1].to_iso(), r[2].to_iso()) for r in rows] == [
            ("Ben", "2010-01-01", "2010-06-01"),
            ("Benjamin", "2010-06-01", "2010-12-01"),
        ]

    def test_view_with_function_call(self, stratum):
        stratum.execute(
            "CREATE VIEW ben_titles AS ("
            "VALIDTIME [DATE '2010-01-01', DATE '2010-12-01']"
            " SELECT i.title FROM item i, item_author ia"
            " WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben')"
        )
        rows = stratum.execute(
            "NONSEQUENCED VALIDTIME SELECT title, begin_time, end_time FROM ben_titles"
        ).rows
        merged = coalesce(
            [((r[0],), Period(r[1].ordinal, r[2].ordinal)) for r in rows]
        )
        assert (("Book One",), Period.from_iso("2010-01-15", "2010-06-01")) in merged

    def test_view_reflects_later_data_changes(self, stratum):
        stratum.execute(
            "CREATE VIEW name_history AS ("
            "VALIDTIME [DATE '2010-01-01', DATE '2010-12-01']"
            " SELECT first_name FROM author WHERE author_id = 'a9')"
        )
        assert stratum.execute(
            "NONSEQUENCED VALIDTIME SELECT first_name FROM name_history"
        ).rows == []
        stratum.db.execute(
            "INSERT INTO author VALUES ('a9', 'Nina', 'Kraus',"
            " DATE '2010-02-01', DATE '9999-12-31')"
        )
        assert stratum.execute(
            "NONSEQUENCED VALIDTIME SELECT first_name FROM name_history"
        ).rows == [["Nina"]]

    def test_non_algebraic_body_rejected(self, stratum):
        with pytest.raises(TemporalError):
            stratum.execute(
                "CREATE VIEW agg AS ("
                "VALIDTIME [DATE '2010-01-01', DATE '2010-12-01']"
                " SELECT COUNT(*) AS n FROM item)"
            )

    def test_nonsequenced_view(self, stratum):
        stratum.execute(
            "CREATE VIEW raw_author AS ("
            "NONSEQUENCED VALIDTIME SELECT first_name, begin_time FROM author)"
        )
        rows = stratum.execute(
            "NONSEQUENCED VALIDTIME SELECT first_name FROM raw_author"
        ).rows
        assert len(rows) == 3  # all versions visible


class TestCurrentViews:
    """Views without modifiers keep TUC semantics, evaluated at query time."""

    def test_view_tracks_current_date(self, stratum):
        stratum.execute(
            "CREATE VIEW current_names AS"
            " (SELECT first_name FROM author WHERE author_id = 'a1')"
        )
        stratum.db.now = Date.from_ymd(2010, 4, 1)
        assert stratum.execute("SELECT * FROM current_names").rows == [["Ben"]]
        stratum.db.now = Date.from_ymd(2010, 8, 1)
        assert stratum.execute("SELECT * FROM current_names").rows == [["Benjamin"]]
