"""Tests for the validation utilities themselves."""

import pytest

from repro.sqlengine.values import Date
from repro.temporal import SlicingStrategy, TemporalResult
from repro.temporal.period import Period
from repro.temporal.validate import (
    check_commutativity,
    check_strategy_equivalence,
    reference_sequenced_result,
    sample_temporal_result,
)

from tests.conftest import GET_AUTHOR_NAME, make_bookstore


@pytest.fixture
def stratum():
    s = make_bookstore()
    s.register_routine(GET_AUTHOR_NAME)
    return s


CONTEXT = Period.from_iso("2010-05-20", "2010-06-10")
QUERY = "SELECT first_name FROM author WHERE author_id = 'a1'"


class TestReference:
    def test_reference_captures_transition(self, stratum):
        reference = reference_sequenced_result(stratum, QUERY, CONTEXT)
        assert reference == [
            (("Ben",), Period.from_iso("2010-05-20", "2010-06-01")),
            (("Benjamin",), Period.from_iso("2010-06-01", "2010-06-10")),
        ]

    def test_reference_restores_now(self, stratum):
        before = stratum.db.now
        reference_sequenced_result(stratum, QUERY, CONTEXT, sample_every=5)
        assert stratum.db.now is before

    def test_sampling_skips_granules(self, stratum):
        sparse = reference_sequenced_result(stratum, QUERY, CONTEXT, sample_every=7)
        dense = reference_sequenced_result(stratum, QUERY, CONTEXT)
        assert len(sparse) >= 1
        # sampled granules are a subset of the dense result's coverage
        dense_granules = {
            (values, g)
            for values, period in dense
            for g in range(period.begin, period.end)
        }
        for values, period in sparse:
            for g in range(period.begin, period.end):
                assert (values, g) in dense_granules


class TestSampling:
    def test_sample_temporal_result_clips(self, stratum):
        result = TemporalResult(
            ["v", "begin_time", "end_time"],
            [["x", Date.from_iso("2010-01-01"), Date.from_iso("2010-12-01")]],
        )
        sampled = sample_temporal_result(result, CONTEXT, 1)
        assert sampled == [(("x",), CONTEXT)]

    def test_row_outside_context_dropped(self, stratum):
        result = TemporalResult(
            ["v", "begin_time", "end_time"],
            [["x", Date.from_iso("2011-01-01"), Date.from_iso("2011-02-01")]],
        )
        assert sample_temporal_result(result, CONTEXT, 1) == []


class TestChecks:
    def test_commutativity_detects_agreement(self, stratum):
        sequenced = (
            "VALIDTIME [DATE '2010-05-20', DATE '2010-06-10'] " + QUERY
        )
        ok, message = check_commutativity(
            stratum, sequenced, QUERY, CONTEXT, strategy=SlicingStrategy.MAX
        )
        assert ok, message

    def test_commutativity_detects_disagreement(self, stratum):
        sequenced = (
            "VALIDTIME [DATE '2010-05-20', DATE '2010-06-10'] " + QUERY
        )
        wrong_conventional = (
            "SELECT last_name FROM author WHERE author_id = 'a1'"
        )
        ok, message = check_commutativity(
            stratum, sequenced, wrong_conventional, CONTEXT,
            strategy=SlicingStrategy.MAX,
        )
        assert not ok
        assert "differ" in message

    def test_equivalence_check(self, stratum):
        sequenced = (
            "VALIDTIME [DATE '2010-05-20', DATE '2010-06-10'] " + QUERY
        )
        ok, _ = check_strategy_equivalence(stratum, sequenced, CONTEXT)
        assert ok
