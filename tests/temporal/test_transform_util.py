"""Transformation utility tests."""

import pytest

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.parser import parse_expression, parse_statement
from repro.temporal.transform_util import (
    add_condition,
    and_all,
    clone,
    fold_first_instance,
    fold_last_instance,
    from_table_aliases,
    overlap_at_point,
    pairwise_overlap,
    rename_routine_calls,
    rewrite_expressions,
    unique_name,
)


class TestClone:
    def test_deep_copy_is_independent(self):
        stmt = parse_statement("SELECT a FROM t WHERE a = 1")
        copy = clone(stmt)
        copy.items[0].expr.name = "b"
        assert stmt.items[0].expr.name == "a"

    def test_null_singleton_survives_clone(self):
        from repro.sqlengine.values import Null

        expr = parse_expression("NULL")
        assert clone(expr).value is Null


class TestBuilders:
    def test_and_all_empty(self):
        assert and_all([]) is None

    def test_and_all_single(self):
        cond = parse_expression("a = 1")
        assert and_all([cond]) is cond

    def test_and_all_multiple(self):
        combined = and_all([parse_expression("a = 1"), parse_expression("b = 2")])
        assert combined.to_sql() == "a = 1 AND b = 2"

    def test_add_condition_to_empty_where(self):
        stmt = parse_statement("SELECT a FROM t")
        add_condition(stmt, parse_expression("a = 1"))
        assert stmt.where.to_sql() == "a = 1"

    def test_add_condition_conjoins(self):
        stmt = parse_statement("SELECT a FROM t WHERE b = 2")
        add_condition(stmt, parse_expression("a = 1"))
        assert stmt.where.to_sql() == "b = 2 AND a = 1"

    def test_overlap_at_point(self):
        cond = overlap_at_point("t", parse_expression("p"))
        assert cond.to_sql() == "t.begin_time <= p AND p < t.end_time"

    def test_folds(self):
        exprs = [parse_expression(x) for x in ("a", "b", "c")]
        assert fold_last_instance(exprs).to_sql() == (
            "LAST_INSTANCE(LAST_INSTANCE(a, b), c)"
        )
        exprs = [parse_expression(x) for x in ("a", "b")]
        assert fold_first_instance(exprs).to_sql() == "FIRST_INSTANCE(a, b)"

    def test_pairwise_overlap_counts(self):
        sources = [
            (parse_expression(f"b{i}"), parse_expression(f"e{i}")) for i in range(3)
        ]
        conditions = pairwise_overlap(sources)
        assert len(conditions) == 6  # 3 pairs x 2 conditions

    def test_unique_name(self):
        taken = {"cp"}
        assert unique_name("cp", taken) == "cp2"
        assert unique_name("cp", taken) == "cp3"
        assert "cp3" in taken


class TestRewriting:
    def test_rewrite_expressions_replaces_nodes(self):
        stmt = parse_statement("SELECT f(a) FROM t WHERE f(b) = 1")

        def rewriter(expr):
            if isinstance(expr, ast.FunctionCall) and expr.name == "f":
                return ast.Literal(value=0)
            return None

        rewrite_expressions(stmt, rewriter)
        assert stmt.to_sql() == "SELECT 0 FROM t WHERE 0 = 1"

    def test_rename_routine_calls_with_args(self):
        stmt = parse_statement("SELECT g(a), h(b) FROM t")
        rename_routine_calls(
            stmt, {"g": "new_g"}, extra_args=lambda: [ast.Literal(value=9)]
        )
        sql = stmt.to_sql()
        assert "new_g(a, 9)" in sql
        assert "h(b)" in sql  # unmapped call untouched

    def test_rename_covers_call_statements(self):
        stmt = parse_statement("CALL p(1)")
        rename_routine_calls(stmt, {"p": "max_p"})
        assert stmt.name == "max_p"

    def test_rename_inside_table_function_ref(self):
        stmt = parse_statement("SELECT 1 FROM TABLE(g(x)) AS f")
        rename_routine_calls(stmt, {"g": "ps_g"})
        assert "TABLE(ps_g(x))" in stmt.to_sql()


class TestFromTableAliases:
    def test_plain_and_aliased(self):
        stmt = parse_statement("SELECT 1 FROM a, b x")
        assert from_table_aliases(stmt) == [("a", "a"), ("b", "x")]

    def test_joins_flattened(self):
        stmt = parse_statement("SELECT 1 FROM a JOIN b ON a.x = b.x")
        assert from_table_aliases(stmt) == [("a", "a"), ("b", "b")]

    def test_subqueries_and_functions_excluded(self):
        stmt = parse_statement(
            "SELECT 1 FROM (SELECT 1 AS one FROM c) AS s, TABLE(f(1)) AS g"
        )
        assert from_table_aliases(stmt) == []
