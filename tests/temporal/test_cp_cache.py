"""The constant-period materialization cache: a sequenced statement may
skip rebuilding the cp temp table when nothing it depends on changed."""

import pytest

from repro.sqlengine.values import Date
from repro.temporal.constant_periods import materialize_constant_periods
from repro.temporal.period import Period
from repro.temporal.stratum import MAX_CP_TABLE, SlicingStrategy

from tests.conftest import make_bookstore

FULL = Period.from_iso("2010-01-01", "2011-01-01")
TABLES = ["author", "item", "item_author"]


@pytest.fixture
def stratum():
    return make_bookstore()


def materialize(stratum, context=FULL, cp_name=MAX_CP_TABLE):
    return materialize_constant_periods(
        stratum.db, TABLES, stratum.registry, context, cp_name
    )


def cp_rows(stratum, cp_name=MAX_CP_TABLE):
    return [list(row) for row in stratum.db.catalog.get_table(cp_name).rows]


class TestSkipRebuild:
    def test_second_materialization_hits(self, stratum):
        db = stratum.db
        count = materialize(stratum)
        rows = cp_rows(stratum)
        version = db.catalog.get_table(MAX_CP_TABLE).version
        assert materialize(stratum) == count
        assert db.obs.value("stratum.cp.cache_hits") == 1
        # untouched: same rows, no new version
        assert cp_rows(stratum) == rows
        assert db.catalog.get_table(MAX_CP_TABLE).version == version

    def test_slice_counter_still_advances_on_hit(self, stratum):
        db = stratum.db
        count = materialize(stratum)
        before = db.obs.value("stratum.slices")
        materialize(stratum)
        assert db.obs.value("stratum.slices") == before + count

    def test_rows_written_only_on_rebuild(self, stratum):
        db = stratum.db
        materialize(stratum)
        written = db.obs.value("engine.rows_written.constant_periods")
        materialize(stratum)
        assert db.obs.value("engine.rows_written.constant_periods") == written

    def test_source_mutation_invalidates(self, stratum):
        db = stratum.db
        materialize(stratum)
        db.execute(
            "UPDATE item SET end_time = DATE '2010-08-15'"
            " WHERE id = 'i2' AND end_time = DATE '2010-09-01'"
        )
        count = materialize(stratum)
        assert db.obs.value("stratum.cp.cache_hits") == 0
        assert Date.from_iso("2010-08-15") in {row[0] for row in cp_rows(stratum)}
        assert count == len(cp_rows(stratum))

    def test_context_change_invalidates(self, stratum):
        db = stratum.db
        materialize(stratum)
        narrow = Period.from_iso("2010-03-01", "2010-06-01")
        count = materialize(stratum, context=narrow)
        assert db.obs.value("stratum.cp.cache_hits") == 0
        rows = cp_rows(stratum)
        assert len(rows) == count
        assert rows[0][0] == Date.from_iso("2010-03-01")
        assert rows[-1][1] == Date.from_iso("2010-06-01")

    def test_distinct_cp_tables_cached_independently(self, stratum):
        db = stratum.db
        materialize(stratum)
        materialize(stratum, cp_name="taupsm_cp_other")
        assert db.obs.value("stratum.cp.cache_hits") == 0
        materialize(stratum)
        materialize(stratum, cp_name="taupsm_cp_other")
        assert db.obs.value("stratum.cp.cache_hits") == 2

    def test_rollback_clears_the_cache(self, stratum):
        """Version counters restored by rollback can climb back to cached
        values over different rows — the cache cannot trust them."""
        db = stratum.db
        materialize(stratum)
        db.execute("BEGIN")
        db.execute(
            "INSERT INTO item VALUES"
            " ('i9', 'Ghost', 1.0, DATE '2010-04-18', DATE '2010-05-15')"
        )
        db.execute("ROLLBACK")
        # same versions as when cached, but the cache was dropped: rebuild
        count = materialize(stratum)
        assert db.obs.value("stratum.cp.cache_hits") == 0
        assert count == len(cp_rows(stratum))
        ghost = Date.from_iso("2010-04-18")
        assert ghost not in {row[0] for row in cp_rows(stratum)}


class TestSequencedExecutionUsesCache:
    def test_repeated_max_statement_hits(self, stratum):
        db = stratum.db
        query = (
            "VALIDTIME [DATE '2010-02-01', DATE '2010-07-01']"
            " SELECT first_name FROM author WHERE author_id = 'a1'"
        )
        first = stratum.execute(query, strategy=SlicingStrategy.MAX)
        second = stratum.execute(query, strategy=SlicingStrategy.MAX)
        assert db.obs.value("stratum.cp.cache_hits") >= 1
        assert second.coalesced() == first.coalesced()

    def test_write_between_statements_misses(self, stratum):
        db = stratum.db
        query = (
            "VALIDTIME [DATE '2010-02-01', DATE '2010-07-01']"
            " SELECT first_name FROM author WHERE author_id = 'a1'"
        )
        stratum.execute(query, strategy=SlicingStrategy.MAX)
        stratum.execute(
            "VALIDTIME [DATE '2010-03-01', DATE '2010-04-01']"
            " UPDATE author SET first_name = 'Benny' WHERE author_id = 'a1'"
        )
        result = stratum.execute(query, strategy=SlicingStrategy.MAX)
        assert db.obs.value("stratum.cp.cache_hits") == 0
        assert {v for (v,), _ in result.coalesced()} >= {"Benny"}
