"""Maximally-fragmented slicing tests (paper §V, Figures 9 and 10)."""

import pytest

from repro.sqlengine.parser import parse_statement
from repro.sqlengine.values import Date
from repro.temporal import SlicingStrategy
from repro.temporal.max_slicing import (
    max_rename_map,
    transform_query_max,
    transform_routine_max,
)
from repro.temporal.period import Period

from tests.conftest import GET_AUTHOR_NAME, make_bookstore

SEQ_Q2 = (
    "VALIDTIME [DATE '2010-01-01', DATE '2010-10-01']"
    " SELECT i.title FROM item i, item_author ia"
    " WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'"
)


@pytest.fixture
def stratum():
    s = make_bookstore()
    s.register_routine(GET_AUTHOR_NAME)
    return s


class TestTransformText:
    def test_function_clone_matches_figure_10(self, stratum):
        rename = {"get_author_name": "max_get_author_name"}
        clone = transform_routine_max(
            stratum.db.catalog.get_routine("get_author_name").definition,
            stratum.registry,
            rename,
        )
        sql = clone.to_sql()
        assert "CREATE FUNCTION max_get_author_name" in sql
        assert "begin_time_in DATE" in sql
        assert "author.begin_time <= begin_time_in" in sql
        assert "begin_time_in < author.end_time" in sql

    def test_query_matches_figure_9(self, stratum):
        stmt = parse_statement(SEQ_Q2)
        result = transform_query_max(
            stmt, stratum.db.catalog, stratum.registry, "cp"
        )
        sql = result.statement.to_sql()
        assert "cp.begin_time AS begin_time" in sql
        assert "cp.end_time AS end_time" in sql
        assert "max_get_author_name(ia.author_id, cp.begin_time)" in sql
        assert "i.begin_time <= cp.begin_time" in sql
        assert "ia.begin_time <= cp.begin_time" in sql

    def test_rename_map_only_temporal_routines(self, stratum):
        stratum.register_routine(
            "CREATE FUNCTION pure (x INTEGER) RETURNS INTEGER LANGUAGE SQL"
            " BEGIN RETURN x; END"
        )
        stmt = parse_statement(
            "VALIDTIME SELECT pure(1), get_author_name('a1') FROM item"
        )
        rename = max_rename_map(stmt, stratum.db.catalog, stratum.registry)
        assert rename == {"get_author_name": "max_get_author_name"}

    def test_nested_call_passes_point_along(self, stratum):
        stratum.register_routine(
            "CREATE FUNCTION shout_name (aid CHAR(10)) RETURNS CHAR(50)"
            " READS SQL DATA LANGUAGE SQL BEGIN"
            " RETURN UPPER(get_author_name(aid)); END"
        )
        stmt = parse_statement("VALIDTIME SELECT shout_name('a1') FROM item")
        result = transform_query_max(stmt, stratum.db.catalog, stratum.registry, "cp")
        outer = next(r for r in result.routines if r.name == "max_shout_name")
        assert "max_get_author_name(aid, begin_time_in)" in outer.to_sql()

    def test_cp_alias_avoids_collision(self, stratum):
        stmt = parse_statement("VALIDTIME SELECT 1 FROM item cp")
        result = transform_query_max(stmt, stratum.db.catalog, stratum.registry, "taupsm_cp")
        assert result.cp_alias != "cp"

    def test_temporal_tables_collected(self, stratum):
        stmt = parse_statement(SEQ_Q2)
        result = transform_query_max(stmt, stratum.db.catalog, stratum.registry, "cp")
        assert result.temporal_tables == ["author", "item", "item_author"]


class TestExecution:
    def test_sequenced_result_history(self, stratum):
        result = stratum.execute(SEQ_Q2, strategy=SlicingStrategy.MAX)
        merged = result.coalesced()
        assert (("Book One",), Period.from_iso("2010-01-15", "2010-06-01")) in merged
        assert (("Book Two",), Period.from_iso("2010-03-01", "2010-06-01")) in merged
        assert len(merged) == 2  # nothing after Ben -> Benjamin

    def test_one_call_per_constant_period_per_row(self, stratum):
        stratum.db.stats.reset()
        stratum.execute(SEQ_Q2, strategy=SlicingStrategy.MAX)
        calls = stratum.db.stats.routine_calls["max_get_author_name"]
        cp_rows = len(stratum.db.catalog.get_table("taupsm_cp"))
        assert cp_rows >= 4
        # invoked once per (satisfying candidate row x constant period)
        assert calls >= cp_rows

    def test_default_context_spans_data(self, stratum):
        result = stratum.execute(
            "VALIDTIME SELECT first_name FROM author WHERE author_id = 'a1'",
            strategy=SlicingStrategy.MAX,
        )
        merged = result.coalesced()
        names = {values[0] for values, _ in merged}
        assert names == {"Ben", "Benjamin"}

    def test_context_clips_result(self, stratum):
        result = stratum.execute(
            "VALIDTIME [DATE '2010-02-01', DATE '2010-03-01']"
            " SELECT first_name FROM author WHERE author_id = 'a1'",
            strategy=SlicingStrategy.MAX,
        )
        for _, period in result.temporal_rows():
            assert period.begin >= Date.from_iso("2010-02-01").ordinal
            assert period.end <= Date.from_iso("2010-03-01").ordinal

    def test_sequenced_call_stamps_result_sets(self, stratum):
        stratum.register_routine(
            "CREATE PROCEDURE names () LANGUAGE SQL BEGIN"
            " SELECT first_name FROM author WHERE author_id = 'a1'; END"
        )
        results = stratum.execute(
            "VALIDTIME [DATE '2010-05-01', DATE '2010-07-01'] CALL names()",
            strategy=SlicingStrategy.MAX,
        )
        assert len(results) == 1
        merged = results[0].coalesced()
        assert (("Ben",), Period.from_iso("2010-05-01", "2010-06-01")) in merged
        assert (("Benjamin",), Period.from_iso("2010-06-01", "2010-07-01")) in merged

    def test_sequenced_union_query(self, stratum):
        result = stratum.execute(
            "VALIDTIME [DATE '2010-02-01', DATE '2010-03-01']"
            " SELECT first_name AS n FROM author WHERE author_id = 'a1'"
            " UNION SELECT last_name AS n FROM author WHERE author_id = 'a2'",
            strategy=SlicingStrategy.MAX,
        )
        names = {values[0] for values, _ in result.coalesced()}
        assert names == {"Ben", "Luxemburg"}

    def test_aggregate_query_under_max(self, stratum):
        result = stratum.execute(
            "VALIDTIME [DATE '2010-03-15', DATE '2010-03-16']"
            " SELECT COUNT(*) FROM item",
            strategy=SlicingStrategy.MAX,
        )
        assert result.coalesced() == [
            ((2,), Period.from_iso("2010-03-15", "2010-03-16"))
        ]
