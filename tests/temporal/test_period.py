"""Period algebra and coalescing tests, including property-based ones."""

import pytest
from hypothesis import given, strategies as st

from repro.sqlengine.values import Date
from repro.temporal.period import (
    Period,
    coalesce,
    collect_change_points,
    constant_periods,
    temporal_rows_equal,
)

periods = st.builds(
    lambda a, b: Period(min(a, b), max(a, b) + 1),
    st.integers(min_value=700_000, max_value=700_400),
    st.integers(min_value=700_000, max_value=700_400),
)


class TestPeriodBasics:
    def test_empty_period_raises(self):
        with pytest.raises(ValueError):
            Period(5, 5)
        with pytest.raises(ValueError):
            Period(6, 5)

    def test_from_iso_and_str(self):
        p = Period.from_iso("2010-01-01", "2010-02-01")
        assert str(p) == "[2010-01-01, 2010-02-01)"
        assert p.duration == 31

    def test_contains_half_open(self):
        p = Period(10, 20)
        assert p.contains(10)
        assert p.contains(19)
        assert not p.contains(20)

    def test_contains_period(self):
        assert Period(0, 10).contains_period(Period(2, 8))
        assert not Period(0, 10).contains_period(Period(2, 12))

    def test_overlaps(self):
        assert Period(0, 10).overlaps(Period(9, 20))
        assert not Period(0, 10).overlaps(Period(10, 20))  # meets, no overlap

    def test_meets(self):
        assert Period(0, 10).meets(Period(10, 20))

    def test_intersect(self):
        assert Period(0, 10).intersect(Period(5, 20)) == Period(5, 10)
        assert Period(0, 10).intersect(Period(10, 20)) is None

    def test_union_with(self):
        assert Period(0, 10).union_with(Period(10, 20)) == Period(0, 20)
        assert Period(0, 10).union_with(Period(5, 8)) == Period(0, 10)
        assert Period(0, 10).union_with(Period(11, 20)) is None

    def test_dates_properties(self):
        p = Period.from_dates(Date.from_iso("2010-01-01"), Date.from_iso("2010-02-01"))
        assert p.begin_date.to_iso() == "2010-01-01"
        assert p.end_date.to_iso() == "2010-02-01"

    @given(periods, periods)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(periods, periods)
    def test_intersection_within_both(self, a, b):
        inter = a.intersect(b)
        if inter is not None:
            assert a.contains_period(inter)
            assert b.contains_period(inter)
        else:
            assert not a.overlaps(b)

    @given(periods, periods)
    def test_union_contains_both_when_defined(self, a, b):
        union = a.union_with(b)
        if union is not None:
            assert union.contains_period(a)
            assert union.contains_period(b)


class TestCoalesce:
    def test_adjacent_equal_values_merge(self):
        rows = [(("x",), Period(0, 5)), (("x",), Period(5, 9))]
        assert coalesce(rows) == [(("x",), Period(0, 9))]

    def test_overlapping_equal_values_merge(self):
        rows = [(("x",), Period(0, 6)), (("x",), Period(4, 9))]
        assert coalesce(rows) == [(("x",), Period(0, 9))]

    def test_gap_not_merged(self):
        rows = [(("x",), Period(0, 4)), (("x",), Period(6, 9))]
        assert len(coalesce(rows)) == 2

    def test_different_values_not_merged(self):
        rows = [(("x",), Period(0, 5)), (("y",), Period(5, 9))]
        assert len(coalesce(rows)) == 2

    def test_char_padding_insensitive(self):
        rows = [(("x ",), Period(0, 5)), (("x",), Period(5, 9))]
        assert len(coalesce(rows)) == 1

    def test_snapshot_equivalence_helper(self):
        left = [(("x",), Period(0, 5)), (("x",), Period(5, 9))]
        right = [(("x",), Period(0, 9))]
        assert temporal_rows_equal(left, right)
        assert not temporal_rows_equal(left, [(("x",), Period(0, 8))])

    @given(st.lists(st.tuples(st.sampled_from(["a", "b"]), periods), max_size=20))
    def test_coalesce_idempotent(self, raw):
        rows = [((value,), period) for value, period in raw]
        once = coalesce(rows)
        assert coalesce(once) == once

    @given(st.lists(st.tuples(st.sampled_from(["a", "b"]), periods), max_size=20))
    def test_coalesce_preserves_granule_membership(self, raw):
        rows = [((value,), period) for value, period in raw]
        merged = coalesce(rows)

        def granules(rs):
            out = set()
            for values, period in rs:
                for g in range(period.begin, period.end):
                    out.add((values, g))
            return out

        assert granules(rows) == granules(merged)

    @given(st.lists(st.tuples(st.sampled_from(["a", "b"]), periods), max_size=20))
    def test_coalesced_periods_disjoint_per_value(self, raw):
        rows = [((value,), period) for value, period in raw]
        merged = coalesce(rows)
        by_value = {}
        for values, period in merged:
            by_value.setdefault(values, []).append(period)
        for ps in by_value.values():
            ps.sort()
            for left, right in zip(ps, ps[1:]):
                assert left.end < right.begin  # disjoint and non-adjacent


class TestConstantPeriods:
    def test_partition_of_context(self):
        context = Period(0, 100)
        cps = constant_periods([10, 40], context)
        assert cps == [Period(0, 10), Period(10, 40), Period(40, 100)]

    def test_points_outside_context_ignored(self):
        cps = constant_periods([-5, 200], Period(0, 100))
        assert cps == [Period(0, 100)]

    def test_point_on_boundary_ignored(self):
        cps = constant_periods([0, 100], Period(0, 100))
        assert cps == [Period(0, 100)]

    def test_no_points(self):
        assert constant_periods([], Period(5, 9)) == [Period(5, 9)]

    @given(st.sets(st.integers(min_value=0, max_value=400), max_size=30))
    def test_partition_properties(self, points):
        context = Period(0, 400)
        cps = constant_periods(points, context)
        # exactly tile the context
        assert cps[0].begin == context.begin
        assert cps[-1].end == context.end
        for left, right in zip(cps, cps[1:]):
            assert left.end == right.begin
        # every interior point is a boundary
        boundaries = {p.begin for p in cps} | {p.end for p in cps}
        for point in points:
            if context.begin < point < context.end:
                assert point in boundaries


class TestCollectChangePoints:
    def test_collects_begin_and_end(self):
        from repro.sqlengine.storage import Column, Table
        from repro.sqlengine.types import SqlType

        table = Table(
            "t",
            [Column("v", SqlType("INTEGER")), Column("begin_time", SqlType("DATE")),
             Column("end_time", SqlType("DATE"))],
        )
        table.insert([1, Date(100), Date(200)])
        table.insert([2, Date(150), Date(250)])
        assert collect_change_points([table]) == {100, 150, 200, 250}
