"""Transaction-time support (paper §III: "everything also applies").

Covers: system-maintained DML, append-only history, time travel via the
transaction clock, nonsequenced/sequenced TRANSACTIONTIME (both slicing
strategies, including through routines), and bitemporal composition.
"""

import pytest

from repro.sqlengine.values import Date
from repro.temporal import SlicingStrategy, TemporalStratum
from repro.temporal.errors import TemporalError
from repro.temporal.period import Period


@pytest.fixture
def stratum():
    s = TemporalStratum()
    s.db.execute("CREATE TABLE account (id CHAR(8), balance FLOAT)")
    s.db.now = Date.from_ymd(2010, 1, 1)
    s.execute("ALTER TABLE account ADD TRANSACTIONTIME")
    s.execute("INSERT INTO account (id, balance) VALUES ('a1', 100.0)")
    s.execute("INSERT INTO account (id, balance) VALUES ('a2', 50.0)")
    s.db.now = Date.from_ymd(2010, 2, 1)
    s.execute("UPDATE account SET balance = 150.0 WHERE id = 'a1'")
    s.db.now = Date.from_ymd(2010, 3, 1)
    s.execute("DELETE FROM account WHERE id = 'a1'")
    s.db.now = Date.from_ymd(2010, 6, 1)
    return s


class TestSystemMaintainedDml:
    def test_history_is_append_only(self, stratum):
        table = stratum.db.catalog.get_table("account")
        # a1: two closed versions; a2: one open version
        assert len(table) == 3

    def test_current_state_after_delete(self, stratum):
        rows = stratum.execute("SELECT id FROM account").rows
        assert rows == [["a2"]]

    def test_explicit_tt_columns_rejected_on_insert(self, stratum):
        with pytest.raises(TemporalError):
            stratum.execute(
                "INSERT INTO account (id, balance, tt_start)"
                " VALUES ('a3', 1.0, DATE '2010-01-01')"
            )

    def test_explicit_tt_columns_rejected_on_update(self, stratum):
        with pytest.raises(TemporalError):
            stratum.execute(
                "UPDATE account SET tt_stop = DATE '2010-01-01'"
            )

    def test_same_day_update_overwrites_in_place(self, stratum):
        stratum.execute("INSERT INTO account (id, balance) VALUES ('a3', 1.0)")
        stratum.execute("UPDATE account SET balance = 2.0 WHERE id = 'a3'")
        history = stratum.execute(
            "NONSEQUENCED TRANSACTIONTIME SELECT balance FROM account"
            " WHERE id = 'a3'"
        ).rows
        assert history == [[2.0]]  # no zero-length version recorded

    def test_same_day_insert_delete_leaves_nothing(self, stratum):
        stratum.execute("INSERT INTO account (id, balance) VALUES ('a4', 1.0)")
        stratum.execute("DELETE FROM account WHERE id = 'a4'")
        history = stratum.execute(
            "NONSEQUENCED TRANSACTIONTIME SELECT balance FROM account"
            " WHERE id = 'a4'"
        ).rows
        assert history == []

    def test_insert_from_select_is_stamped(self, stratum):
        stratum.db.execute("CREATE TABLE feed (id CHAR(8), balance FLOAT)")
        stratum.db.execute("INSERT INTO feed VALUES ('a9', 9.0)")
        stratum.execute("INSERT INTO account (id, balance) SELECT id, balance FROM feed")
        row = stratum.execute(
            "NONSEQUENCED TRANSACTIONTIME SELECT tt_start, tt_stop"
            " FROM account WHERE id = 'a9'"
        ).rows[0]
        assert row[0] == Date.from_ymd(2010, 6, 1)
        assert row[1] == Date(Date.MAX_ORDINAL)


class TestTimeTravel:
    def test_as_of_past_clock(self, stratum):
        stratum.transaction_clock = Date.from_ymd(2010, 2, 15)
        assert stratum.execute(
            "SELECT balance FROM account WHERE id = 'a1'"
        ).rows == [[150.0]]
        stratum.transaction_clock = Date.from_ymd(2010, 1, 15)
        assert stratum.execute(
            "SELECT balance FROM account WHERE id = 'a1'"
        ).rows == [[100.0]]

    def test_clock_reset_returns_to_present(self, stratum):
        stratum.transaction_clock = Date.from_ymd(2010, 1, 15)
        stratum.transaction_clock = None
        assert stratum.execute(
            "SELECT balance FROM account WHERE id = 'a1'"
        ).rows == []

    def test_before_first_record(self, stratum):
        stratum.transaction_clock = Date.from_ymd(2009, 6, 1)
        assert stratum.execute("SELECT id FROM account").rows == []


class TestSequencedTransactionTime:
    CONTEXT = "TRANSACTIONTIME [DATE '2010-01-01', DATE '2010-06-01'] "
    EXPECTED = [
        ((100.0,), Period.from_iso("2010-01-01", "2010-02-01")),
        ((150.0,), Period.from_iso("2010-02-01", "2010-03-01")),
    ]

    def test_max(self, stratum):
        result = stratum.execute(
            self.CONTEXT + "SELECT balance FROM account WHERE id = 'a1'",
            strategy=SlicingStrategy.MAX,
        )
        assert result.coalesced() == self.EXPECTED

    def test_perst(self, stratum):
        result = stratum.execute(
            self.CONTEXT + "SELECT balance FROM account WHERE id = 'a1'",
            strategy=SlicingStrategy.PERST,
        )
        assert result.coalesced() == self.EXPECTED

    def test_through_routine(self, stratum):
        stratum.register_routine("""
        CREATE FUNCTION balance_of (aid CHAR(8)) RETURNS FLOAT
        READS SQL DATA LANGUAGE SQL
        BEGIN
          RETURN (SELECT balance FROM account WHERE id = aid);
        END
        """)
        for strategy in (SlicingStrategy.MAX, SlicingStrategy.PERST):
            result = stratum.execute(
                self.CONTEXT
                + "SELECT a.id, balance_of(a.id) AS b FROM account a"
                  " WHERE a.id = 'a1'",
                strategy=strategy,
            )
            assert result.coalesced() == [
                (("a1", 100.0), Period.from_iso("2010-01-01", "2010-02-01")),
                (("a1", 150.0), Period.from_iso("2010-02-01", "2010-03-01")),
            ], strategy

    def test_nonsequenced_exposes_tt_columns(self, stratum):
        rows = stratum.execute(
            "NONSEQUENCED TRANSACTIONTIME SELECT balance, tt_start"
            " FROM account WHERE id = 'a1' ORDER BY tt_start"
        ).rows
        assert [r[0] for r in rows] == [100.0, 150.0]


class TestBitemporal:
    @pytest.fixture
    def bistratum(self):
        s = TemporalStratum()
        s.db.execute(
            "CREATE TABLE price (item CHAR(8), amount FLOAT,"
            " begin_time DATE, end_time DATE)"
        )
        s.execute("ALTER TABLE price ADD VALIDTIME")
        s.db.now = Date.from_ymd(2010, 1, 1)
        s.execute("ALTER TABLE price ADD TRANSACTIONTIME")
        table = s.db.catalog.get_table("price")
        # recorded on Jan 1: price 10 valid all of 2010
        table.insert(["i1", 10.0, Date.from_ymd(2010, 1, 1),
                      Date.from_ymd(2011, 1, 1),
                      Date.from_ymd(2010, 1, 1), Date(Date.MAX_ORDINAL)])
        # on Mar 1 we corrected history: from Feb on the price was 12
        row = table.rows[0]
        stop = table.column_index("tt_stop")
        end = table.column_index("end_time")
        corrected = list(row)
        row[stop] = Date.from_ymd(2010, 3, 1)
        corrected[end] = Date.from_ymd(2010, 2, 1)
        table.insert(corrected[:4] + [Date.from_ymd(2010, 3, 1), Date(Date.MAX_ORDINAL)])
        table.insert(["i1", 12.0, Date.from_ymd(2010, 2, 1),
                      Date.from_ymd(2011, 1, 1),
                      Date.from_ymd(2010, 3, 1), Date(Date.MAX_ORDINAL)])
        s.db.now = Date.from_ymd(2010, 6, 1)
        return s

    def test_current_sees_corrected_belief(self, bistratum):
        # current valid time (June) under current transaction time
        assert bistratum.execute(
            "SELECT amount FROM price WHERE item = 'i1'"
        ).rows == [[12.0]]

    def test_time_travel_sees_original_belief(self, bistratum):
        bistratum.transaction_clock = Date.from_ymd(2010, 2, 1)
        assert bistratum.execute(
            "SELECT amount FROM price WHERE item = 'i1'"
        ).rows == [[10.0]]

    def test_sequenced_validtime_under_current_belief(self, bistratum):
        result = bistratum.execute(
            "VALIDTIME [DATE '2010-01-01', DATE '2010-06-01']"
            " SELECT amount FROM price WHERE item = 'i1'",
            strategy=SlicingStrategy.MAX,
        )
        assert result.coalesced() == [
            ((10.0,), Period.from_iso("2010-01-01", "2010-02-01")),
            ((12.0,), Period.from_iso("2010-02-01", "2010-06-01")),
        ]

    def test_sequenced_validtime_as_of_past(self, bistratum):
        bistratum.transaction_clock = Date.from_ymd(2010, 2, 1)
        result = bistratum.execute(
            "VALIDTIME [DATE '2010-01-01', DATE '2010-06-01']"
            " SELECT amount FROM price WHERE item = 'i1'",
            strategy=SlicingStrategy.MAX,
        )
        assert result.coalesced() == [
            ((10.0,), Period.from_iso("2010-01-01", "2010-06-01")),
        ]

    def test_direct_bitemporal_dml_rejected(self, bistratum):
        with pytest.raises(TemporalError):
            bistratum.execute("DELETE FROM price WHERE item = 'i1'")
