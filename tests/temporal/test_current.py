"""Current semantics and temporal upward compatibility (paper §IV-C)."""

import pytest

from repro.sqlengine.parser import parse_statement
from repro.sqlengine.values import Date
from repro.temporal.current import transform_current

from tests.conftest import GET_AUTHOR_NAME, make_bookstore


@pytest.fixture
def stratum():
    s = make_bookstore()
    s.register_routine(GET_AUTHOR_NAME)
    return s


class TestCurrentTransformText:
    """The emitted SQL should match the shapes of Figures 5 and 6."""

    def test_query_gains_current_predicates(self, stratum):
        stmt = parse_statement(
            "SELECT i.title FROM item i, item_author ia"
            " WHERE i.id = ia.item_id"
        )
        result = transform_current(stmt, stratum.db.catalog, stratum.registry)
        sql = result.statement.to_sql()
        assert "i.begin_time <= CURRENT_DATE" in sql
        assert "CURRENT_DATE < i.end_time" in sql
        assert "ia.begin_time <= CURRENT_DATE" in sql

    def test_routine_cloned_with_curr_prefix(self, stratum):
        stmt = parse_statement(
            "SELECT 1 FROM item_author ia"
            " WHERE get_author_name(ia.author_id) = 'Ben'"
        )
        result = transform_current(stmt, stratum.db.catalog, stratum.registry)
        assert len(result.routines) == 1
        clone = result.routines[0]
        assert clone.name == "curr_get_author_name"
        assert "author.begin_time <= CURRENT_DATE" in clone.to_sql()
        assert "curr_get_author_name(ia.author_id)" in result.statement.to_sql()

    def test_non_temporal_routine_untouched(self, stratum):
        stratum.register_routine(
            "CREATE FUNCTION pure (x INTEGER) RETURNS INTEGER LANGUAGE SQL"
            " BEGIN RETURN x * 2; END"
        )
        stmt = parse_statement("SELECT pure(2) FROM item")
        result = transform_current(stmt, stratum.db.catalog, stratum.registry)
        assert result.routines == []  # reachability optimization (§V-C)
        assert "pure(2)" in result.statement.to_sql()

    def test_subquery_gets_predicates(self, stratum):
        stmt = parse_statement(
            "SELECT 1 FROM item i WHERE EXISTS"
            " (SELECT 1 FROM author a WHERE a.author_id = 'a1')"
        )
        sql = transform_current(
            stmt, stratum.db.catalog, stratum.registry
        ).statement.to_sql()
        assert "a.begin_time <= CURRENT_DATE" in sql


class TestTemporalUpwardCompatibility:
    """Legacy statements keep their meaning after ADD VALIDTIME."""

    def test_current_query_sees_only_now(self, stratum):
        stratum.db.now = Date.from_ymd(2010, 4, 1)
        result = stratum.execute("SELECT first_name FROM author WHERE author_id = 'a1'")
        assert result.rows == [["Ben"]]
        stratum.db.now = Date.from_ymd(2010, 8, 1)
        result = stratum.execute("SELECT first_name FROM author WHERE author_id = 'a1'")
        assert result.rows == [["Benjamin"]]

    def test_current_query_through_function(self, stratum):
        stratum.db.now = Date.from_ymd(2010, 4, 1)
        result = stratum.execute(
            "SELECT i.title FROM item i, item_author ia"
            " WHERE i.id = ia.item_id AND get_author_name(ia.author_id) = 'Ben'"
        )
        assert sorted(r[0] for r in result.rows) == ["Book One", "Book Two"]

    def test_plain_table_stays_plain(self, stratum):
        stratum.db.execute("CREATE TABLE notes (t CHAR(10))")
        stratum.db.execute("INSERT INTO notes VALUES ('hello')")
        assert stratum.execute("SELECT t FROM notes").rows == [["hello"]]

    def test_current_insert(self, stratum):
        stratum.db.now = Date.from_ymd(2010, 7, 1)
        stratum.execute("INSERT INTO item (id, title, price) VALUES ('i9', 'New Book', 10.0)")
        assert stratum.execute(
            "SELECT title FROM item WHERE id = 'i9'"
        ).rows == [["New Book"]]
        # invisible in the past
        stratum.db.now = Date.from_ymd(2010, 6, 1)
        assert stratum.execute("SELECT title FROM item WHERE id = 'i9'").rows == []

    def test_current_update_preserves_history(self, stratum):
        stratum.db.now = Date.from_ymd(2010, 7, 1)
        stratum.execute("UPDATE item SET price = 30.0 WHERE id = 'i1'")
        assert stratum.execute("SELECT price FROM item WHERE id = 'i1'").scalar() == 30.0
        stratum.db.now = Date.from_ymd(2010, 5, 1)
        assert stratum.execute("SELECT price FROM item WHERE id = 'i1'").scalar() == 25.0

    def test_current_update_same_day_overwrites(self, stratum):
        stratum.db.now = Date.from_ymd(2010, 7, 1)
        stratum.execute("INSERT INTO item (id, title, price) VALUES ('i9', 'X', 1.0)")
        stratum.execute("UPDATE item SET price = 2.0 WHERE id = 'i9'")
        rows = stratum.execute(
            "NONSEQUENCED VALIDTIME SELECT price FROM item WHERE id = 'i9'"
        ).rows
        assert rows == [[2.0]]  # no empty-period version left behind

    def test_current_delete_terminates(self, stratum):
        stratum.db.now = Date.from_ymd(2010, 7, 1)
        stratum.execute("DELETE FROM item WHERE id = 'i1'")
        assert stratum.execute("SELECT title FROM item WHERE id = 'i1'").rows == []
        stratum.db.now = Date.from_ymd(2010, 5, 1)
        assert stratum.execute(
            "SELECT title FROM item WHERE id = 'i1'"
        ).rows == [["Book One"]]

    def test_current_delete_same_day_insert_removes_row(self, stratum):
        stratum.db.now = Date.from_ymd(2010, 7, 1)
        stratum.execute("INSERT INTO item (id, title, price) VALUES ('i9', 'X', 1.0)")
        stratum.execute("DELETE FROM item WHERE id = 'i9'")
        rows = stratum.execute(
            "NONSEQUENCED VALIDTIME SELECT price FROM item WHERE id = 'i9'"
        ).rows
        assert rows == []

    def test_current_update_through_where_function(self, stratum):
        stratum.db.now = Date.from_ymd(2010, 4, 1)
        count = stratum.execute(
            "UPDATE item SET price = 99.0 WHERE id = 'i1'"
        )
        assert count == 1


class TestNonsequenced:
    def test_timestamps_visible(self, stratum):
        result = stratum.execute(
            "NONSEQUENCED VALIDTIME SELECT first_name, begin_time, end_time"
            " FROM author WHERE author_id = 'a1' ORDER BY begin_time"
        )
        assert result.rows[0][0] == "Ben"
        assert result.rows[0][2] == Date.from_iso("2010-06-01")

    def test_explicit_timestamp_predicate(self, stratum):
        result = stratum.execute(
            "NONSEQUENCED VALIDTIME SELECT first_name FROM author"
            " WHERE begin_time = DATE '2010-06-01'"
        )
        assert result.rows == [["Benjamin"]]
