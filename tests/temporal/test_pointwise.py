"""Point-wise transformation core tests (shared by cur/max/fallback)."""

import pytest

from repro.sqlengine.parser import parse_expression, parse_statement
from repro.temporal.errors import TemporalError
from repro.temporal.pointwise import (
    add_point_conditions,
    forbid_temporal_dml,
    transform_statement_at_point,
)

from tests.conftest import make_bookstore


@pytest.fixture
def stratum():
    return make_bookstore()


def point():
    return parse_expression("p0")


class TestAddPointConditions:
    def test_temporal_table_gains_overlap(self, stratum):
        stmt = parse_statement("SELECT title FROM item")
        add_point_conditions(stmt, point(), stratum.registry)
        sql = stmt.to_sql()
        assert "item.begin_time <= p0" in sql
        assert "p0 < item.end_time" in sql

    def test_alias_used_when_present(self, stratum):
        stmt = parse_statement("SELECT i.title FROM item i")
        add_point_conditions(stmt, point(), stratum.registry)
        assert "i.begin_time <= p0" in stmt.to_sql()

    def test_existing_where_preserved(self, stratum):
        stmt = parse_statement("SELECT title FROM item WHERE id = 'i1'")
        add_point_conditions(stmt, point(), stratum.registry)
        sql = stmt.to_sql()
        assert "id = 'i1' AND" in sql

    def test_non_temporal_table_untouched(self, stratum):
        stratum.db.execute("CREATE TABLE plain (x INTEGER)")
        stmt = parse_statement("SELECT x FROM plain")
        add_point_conditions(stmt, point(), stratum.registry)
        assert stmt.where is None

    def test_each_select_gets_own_tables_only(self, stratum):
        stmt = parse_statement(
            "SELECT title FROM item WHERE EXISTS (SELECT 1 FROM author)"
        )
        add_point_conditions(stmt, point(), stratum.registry)
        sql = stmt.to_sql()
        # the inner subquery carries author's condition (inside parens),
        # the outer carries item's; each exactly once
        inner = sql.split("EXISTS (")[1].split(")")[0]
        assert "author.begin_time <= p0" in inner
        assert "item.begin_time" not in inner
        assert sql.count("author.begin_time <= p0") == 1
        assert sql.count("item.begin_time <= p0") == 1

    def test_join_sources_covered(self, stratum):
        stmt = parse_statement(
            "SELECT 1 FROM item i JOIN item_author ia ON i.id = ia.item_id"
        )
        add_point_conditions(stmt, point(), stratum.registry)
        sql = stmt.to_sql()
        assert "i.begin_time <= p0" in sql
        assert "ia.begin_time <= p0" in sql


class TestForbidTemporalDml:
    def test_write_to_temporal_table_rejected(self, stratum):
        stmt = parse_statement("DELETE FROM item WHERE id = 'i1'")
        with pytest.raises(TemporalError):
            forbid_temporal_dml(stmt, stratum.registry)

    def test_write_to_plain_table_fine(self, stratum):
        stratum.db.execute("CREATE TABLE plain (x INTEGER)")
        stmt = parse_statement("INSERT INTO plain VALUES (1)")
        forbid_temporal_dml(stmt, stratum.registry)

    def test_nested_write_in_routine_body_rejected(self, stratum):
        stmt = parse_statement(
            "CREATE PROCEDURE p () LANGUAGE SQL BEGIN"
            " UPDATE item SET title = 'x'; END"
        )
        with pytest.raises(TemporalError):
            forbid_temporal_dml(stmt.body, stratum.registry)


class TestRenameWithExtraArgs:
    def test_rename_and_append(self, stratum):
        from tests.conftest import GET_AUTHOR_NAME

        stratum.register_routine(GET_AUTHOR_NAME)
        stmt = parse_statement("SELECT get_author_name('a1') FROM item")
        transform_statement_at_point(
            stmt,
            point(),
            stratum.registry,
            {"get_author_name": "max_get_author_name"},
            extra_args=lambda: [parse_expression("p0")],
        )
        assert "max_get_author_name('a1', p0)" in stmt.to_sql()
