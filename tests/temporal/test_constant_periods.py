"""Constant-period computation (paper §V-A, Figure 8)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine.values import Date
from repro.temporal.constant_periods import (
    build_constant_period_sql,
    build_time_points_sql,
    compute_constant_periods,
    materialize_constant_periods,
    materialize_constant_periods_via_sql,
)
from repro.temporal.period import Period

from tests.conftest import make_bookstore


@pytest.fixture
def stratum():
    return make_bookstore()


FULL = Period.from_iso("2010-01-01", "2011-01-01")


class TestNativeComputation:
    def test_periods_tile_the_context(self, stratum):
        periods = compute_constant_periods(
            stratum.db, ["author", "item", "item_author"], stratum.registry, FULL
        )
        assert periods[0].begin == FULL.begin
        assert periods[-1].end == FULL.end
        for left, right in zip(periods, periods[1:]):
            assert left.end == right.begin

    def test_every_change_point_is_a_boundary(self, stratum):
        periods = compute_constant_periods(
            stratum.db, ["author"], stratum.registry, FULL
        )
        boundaries = {p.begin for p in periods}
        assert Date.from_iso("2010-06-01").ordinal in boundaries

    def test_fewer_tables_fewer_periods(self, stratum):
        few = compute_constant_periods(stratum.db, ["author"], stratum.registry, FULL)
        many = compute_constant_periods(
            stratum.db, ["author", "item", "item_author"], stratum.registry, FULL
        )
        assert len(few) <= len(many)

    def test_materialize_creates_table(self, stratum):
        count = materialize_constant_periods(
            stratum.db, ["author"], stratum.registry, FULL, "cp_test"
        )
        table = stratum.db.catalog.get_table("cp_test")
        assert len(table) == count
        # rows are (begin, end) Date pairs in order
        assert all(row[0] < row[1] for row in table.rows)

    def test_materialize_replaces_existing(self, stratum):
        materialize_constant_periods(
            stratum.db, ["author"], stratum.registry, FULL, "cp_test"
        )
        count = materialize_constant_periods(
            stratum.db, ["author"], stratum.registry,
            Period.from_iso("2010-01-01", "2010-02-01"), "cp_test"
        )
        assert len(stratum.db.catalog.get_table("cp_test")) == count


class TestFigureEightSql:
    def test_ts_sql_mentions_all_tables(self, stratum):
        sql = build_time_points_sql(["author", "item"], stratum.registry)
        assert sql.count("FROM author") == 2  # begin_time and end_time
        assert sql.count("FROM item") == 2
        assert "UNION" in sql

    def test_cp_sql_shape(self, stratum):
        sql = build_constant_period_sql(FULL)
        assert "NOT EXISTS" in sql
        assert "DATE '2010-01-01'" in sql

    def test_sql_route_matches_native_between_data_points(self, stratum):
        """Figure-8 SQL and the native path agree on interior periods."""
        native = compute_constant_periods(
            stratum.db, ["author", "item"], stratum.registry, FULL
        )
        materialize_constant_periods_via_sql(
            stratum.db, ["author", "item"], stratum.registry, FULL, "cp_sql"
        )
        sql_periods = [
            Period(row[0].ordinal, row[1].ordinal)
            for row in stratum.db.catalog.get_table("cp_sql").rows
        ]
        # the SQL route forms periods between data points only (and its
        # last period may run past the context to the next data point);
        # periods strictly inside the context must coincide
        interior_native = [
            p for p in native if p.begin != FULL.begin and p.end < FULL.end
        ]
        assert sorted(interior_native) == sorted(
            p for p in sql_periods
            if p.begin != FULL.begin and p.end < FULL.end
        )


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.integers(min_value=733778, max_value=734000), min_size=0, max_size=12))
    def test_native_matches_sql_for_random_histories(self, points):
        stratum = make_bookstore()
        db = stratum.db
        stratum.create_temporal_table(
            "CREATE TABLE hist (v INTEGER, begin_time DATE, end_time DATE)"
        )
        ordered = sorted(points)
        for i, point in enumerate(ordered):
            end = ordered[i + 1] if i + 1 < len(ordered) else point + 30
            db.insert_rows("hist", [[i, Date(point), Date(end)]])
        context = Period(733770, 734100)
        native = compute_constant_periods(db, ["hist"], stratum.registry, context)
        # tiling property
        assert native[0].begin == context.begin
        assert native[-1].end == context.end
        materialize_constant_periods_via_sql(
            db, ["hist"], stratum.registry, context, "cp_check"
        )
        sql_periods = sorted(
            Period(row[0].ordinal, row[1].ordinal)
            for row in db.catalog.get_table("cp_check").rows
        )
        interior = [
            p for p in native
            if p.begin != context.begin and p.end < context.end
        ]
        interior_sql = [
            p for p in sql_periods
            if p.begin != context.begin and p.end < context.end
        ]
        assert interior == interior_sql
