"""Temporal registry tests."""

import pytest

from repro.sqlengine.errors import CatalogError
from repro.sqlengine.storage import Column, Table
from repro.sqlengine.types import SqlType
from repro.temporal.schema import TemporalRegistry, TemporalTableInfo


def temporal_table(name="t"):
    return Table(
        name,
        [
            Column("v", SqlType("INTEGER")),
            Column("begin_time", SqlType("DATE")),
            Column("end_time", SqlType("DATE")),
        ],
    )


class TestRegistry:
    def test_add_and_lookup_case_insensitive(self):
        registry = TemporalRegistry()
        registry.add(TemporalTableInfo(name="t"), temporal_table())
        assert registry.is_temporal("T")
        assert registry.get("t").name == "t"

    def test_missing_timestamp_column_rejected(self):
        registry = TemporalRegistry()
        bare = Table("t", [Column("v", SqlType("INTEGER"))])
        with pytest.raises(CatalogError):
            registry.add(TemporalTableInfo(name="t"), bare)

    def test_non_date_timestamp_rejected(self):
        registry = TemporalRegistry()
        bad = Table(
            "t",
            [Column("begin_time", SqlType("INTEGER")),
             Column("end_time", SqlType("DATE"))],
        )
        with pytest.raises(CatalogError):
            registry.add(TemporalTableInfo(name="t"), bad)

    def test_custom_column_names(self):
        registry = TemporalRegistry()
        table = Table(
            "t",
            [Column("v", SqlType("INTEGER")),
             Column("vt_start", SqlType("DATE")),
             Column("vt_end", SqlType("DATE"))],
        )
        info = TemporalTableInfo(name="t", begin_column="vt_start", end_column="vt_end")
        registry.add(info, table)
        assert registry.get("t").begin_column == "vt_start"

    def test_remove(self):
        registry = TemporalRegistry()
        registry.add(TemporalTableInfo(name="t"), temporal_table())
        registry.remove("t")
        assert not registry.is_temporal("t")

    def test_names_sorted(self):
        registry = TemporalRegistry()
        registry.add(TemporalTableInfo(name="zz"), temporal_table("zz"))
        registry.add(TemporalTableInfo(name="aa"), temporal_table("aa"))
        assert registry.names() == ["aa", "zz"]

    def test_value_columns_hide_timestamps(self):
        registry = TemporalRegistry()
        table = temporal_table()
        registry.add(TemporalTableInfo(name="t"), table)
        assert registry.value_columns(table) == ["v"]

    def test_value_columns_of_unregistered_table(self):
        registry = TemporalRegistry()
        table = temporal_table()
        assert registry.value_columns(table) == ["v", "begin_time", "end_time"]
