"""Outer joins over temporal tables: null-extension must survive.

A naive transformation puts overlap predicates in the WHERE clause,
silently converting LEFT JOIN into INNER JOIN; the stratum must place
them in the ON clause instead (current and MAX), and PERST must route
such selects through its loop fallback rather than the algebraic path.
"""

import pytest

from repro.sqlengine.parser import parse_statement
from repro.sqlengine.values import Date, Null
from repro.temporal import SlicingStrategy
from repro.temporal.errors import TemporalError
from repro.temporal.period import Period
from repro.temporal.validate import check_commutativity

from tests.conftest import make_bookstore

LEFT_QUERY = (
    "SELECT i.title, ia.author_id FROM item i"
    " LEFT JOIN item_author ia ON i.id = ia.item_id"
)


@pytest.fixture
def stratum():
    s = make_bookstore()
    # remove i2's links so a null-extended row exists
    s.db.execute("DELETE FROM item_author WHERE item_id = 'i2'")
    s.db.now = Date.from_ymd(2010, 4, 1)
    return s


class TestCurrentSemantics:
    def test_null_extension_preserved(self, stratum):
        rows = sorted(map(tuple, stratum.execute(LEFT_QUERY).rows))
        assert ("Book Two", Null) in rows
        assert ("Book One", "a1") in rows

    def test_condition_lands_in_on_clause(self, stratum):
        transformed = stratum.transform(LEFT_QUERY)
        sql = transformed.statement.to_sql()
        on_clause = sql.split(" ON ")[1].split(" WHERE ")[0]
        assert "ia.begin_time <= CURRENT_DATE" in on_clause

    def test_left_side_condition_stays_in_where(self, stratum):
        transformed = stratum.transform(LEFT_QUERY)
        sql = transformed.statement.to_sql()
        assert "WHERE" in sql
        where_clause = sql.split(" WHERE ")[1]
        assert "i.begin_time <= CURRENT_DATE" in where_clause


class TestSequencedMax:
    def test_commutativity_with_null_extension(self, stratum):
        context = Period.from_iso("2010-01-01", "2010-10-01")
        sequenced = (
            "VALIDTIME [DATE '2010-01-01', DATE '2010-10-01'] " + LEFT_QUERY
        )
        ok, message = check_commutativity(
            stratum, sequenced, LEFT_QUERY, context,
            strategy=SlicingStrategy.MAX, sample_every=5,
        )
        assert ok, message

    def test_null_extended_history(self, stratum):
        sequenced = (
            "VALIDTIME [DATE '2010-03-01', DATE '2010-04-01'] " + LEFT_QUERY
        )
        result = stratum.execute(sequenced, strategy=SlicingStrategy.MAX)
        values = {v for v, _ in result.coalesced()}
        assert ("Book Two", Null) in values


class TestSequencedPerst:
    def test_algebraic_path_refuses_left_join(self, stratum):
        from repro.temporal.perst_slicing import PerstTransformer

        transformer = PerstTransformer(stratum.db.catalog, stratum.registry)
        sequenced = parse_statement("VALIDTIME " + LEFT_QUERY)
        with pytest.raises(TemporalError):
            transformer.transform(sequenced)

    def test_heuristic_falls_back_to_max(self, stratum):
        sequenced = (
            "VALIDTIME [DATE '2010-03-01', DATE '2010-04-01'] " + LEFT_QUERY
        )
        result = stratum.execute(sequenced, strategy=SlicingStrategy.AUTO)
        assert stratum.last_strategy is SlicingStrategy.MAX
        assert len(result) > 0
