"""§VII-F heuristic and cost-model tests."""

import pytest

from repro.sqlengine.parser import parse_statement
from repro.temporal import SlicingStrategy
from repro.temporal.heuristic import (
    SHORT_CONTEXT_DAYS,
    choose_strategy,
    estimate_costs,
    perst_applicable,
    temporal_row_count,
    uses_per_period_cursors,
)
from repro.temporal.period import Period

from tests.conftest import GET_AUTHOR_NAME, make_bookstore

CURSOR_FN = """
CREATE FUNCTION scan_titles () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
BEGIN
  DECLARE done INTEGER DEFAULT 0;
  DECLARE t CHAR(100);
  DECLARE n INTEGER DEFAULT 0;
  DECLARE c CURSOR FOR SELECT title FROM item;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
  OPEN c;
  w: WHILE done = 0 DO
    FETCH c INTO t;
    IF done = 0 THEN SET n = n + 1; END IF;
  END WHILE w;
  CLOSE c;
  RETURN n;
END
"""


@pytest.fixture
def stratum():
    s = make_bookstore()
    s.register_routine(GET_AUTHOR_NAME)
    return s


def choice(stratum, sql, context, rows=None):
    return choose_strategy(
        parse_statement(sql), stratum.db, stratum.registry, context, data_rows=rows
    )


class TestRules:
    QUERY = "VALIDTIME SELECT get_author_name('a1') FROM item"

    def test_rule_a_inapplicable_forces_max(self, stratum):
        stratum.register_routine("""
        CREATE FUNCTION selfref () RETURNS FLOAT READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE p FLOAT;
          SET p = (SELECT price FROM item WHERE id = 'i1');
          SET p = p + 1.0;
          RETURN p;
        END
        """)
        result = choice(
            stratum, "VALIDTIME SELECT selfref() FROM item",
            Period.from_iso("2010-01-01", "2011-01-01"),
        )
        assert result.strategy is SlicingStrategy.MAX
        assert result.rule == "a"

    def test_rule_b_cursors_and_large_data(self, stratum):
        stratum.register_routine(CURSOR_FN)
        result = choice(
            stratum, "VALIDTIME SELECT scan_titles() FROM item",
            Period.from_iso("2010-01-01", "2011-01-01"),
            rows=100_000,
        )
        assert result.strategy is SlicingStrategy.MAX
        assert result.rule == "b"

    def test_rule_c_small_and_short(self, stratum):
        result = choice(
            stratum, self.QUERY, Period.from_iso("2010-01-01", "2010-01-05")
        )
        assert result.strategy is SlicingStrategy.MAX
        assert result.rule == "c"

    def test_default_perst(self, stratum):
        result = choice(
            stratum, self.QUERY, Period.from_iso("2010-01-01", "2011-01-01")
        )
        assert result.strategy is SlicingStrategy.PERST
        assert result.rule == "default"

    def test_large_data_short_context_not_rule_c(self, stratum):
        result = choice(
            stratum, self.QUERY,
            Period.from_iso("2010-01-01", "2010-01-05"),
            rows=1_000_000,
        )
        assert result.rule != "c"


class TestHelpers:
    def test_temporal_row_count(self, stratum):
        stmt = parse_statement("SELECT get_author_name('a1') FROM item")
        count = temporal_row_count(stmt, stratum.db, stratum.registry)
        assert count == len(stratum.db.catalog.get_table("author")) + len(
            stratum.db.catalog.get_table("item")
        )

    def test_uses_per_period_cursors(self, stratum):
        stratum.register_routine(CURSOR_FN)
        stmt = parse_statement("SELECT scan_titles()")
        assert uses_per_period_cursors(stmt, stratum.db, stratum.registry)

    def test_no_cursor_detected(self, stratum):
        stmt = parse_statement("SELECT get_author_name('a1')")
        assert not uses_per_period_cursors(stmt, stratum.db, stratum.registry)

    def test_perst_applicable_helper(self, stratum):
        ok, _ = perst_applicable(
            parse_statement("SELECT get_author_name('a1') FROM item"),
            stratum.db, stratum.registry,
        )
        assert ok

    def test_short_context_constant_sane(self):
        assert 1 <= SHORT_CONTEXT_DAYS <= 100


class TestCostModel:
    def test_costs_positive(self, stratum):
        stmt = parse_statement("SELECT get_author_name('a1') FROM item")
        estimate = estimate_costs(
            stmt, stratum.db, stratum.registry,
            Period.from_iso("2010-01-01", "2011-01-01"),
        )
        assert estimate.max_cost > 0
        assert estimate.perst_cost > 0

    def test_long_context_prefers_perst(self, stratum):
        stmt = parse_statement("SELECT get_author_name('a1') FROM item")
        long = estimate_costs(
            stmt, stratum.db, stratum.registry,
            Period.from_iso("2010-01-01", "2011-12-01"),
        )
        assert long.prefers_perst

    def test_cursor_penalty_raises_perst_cost(self, stratum):
        stratum.register_routine(CURSOR_FN)
        context = Period.from_iso("2010-01-01", "2011-01-01")
        plain = estimate_costs(
            parse_statement("SELECT title FROM item"),  # same tables, no cursor
            stratum.db, stratum.registry, context,
        )
        cursored = estimate_costs(
            parse_statement("SELECT scan_titles() FROM item"),
            stratum.db, stratum.registry, context,
        )
        assert cursored.perst_cost > plain.perst_cost


class TestCostStrategy:
    """SlicingStrategy.COST routes through the §VIII cost model."""

    def test_cost_strategy_executes(self, stratum):
        from repro.temporal import SlicingStrategy

        result = stratum.execute(
            "VALIDTIME [DATE '2010-01-01', DATE '2010-12-01']"
            " SELECT get_author_name('a1') AS n FROM item",
            strategy=SlicingStrategy.COST,
        )
        assert stratum.last_strategy in (SlicingStrategy.MAX, SlicingStrategy.PERST)
        assert len(result) > 0

    def test_cost_strategy_inapplicable_falls_back_to_max(self, stratum):
        from repro.temporal import SlicingStrategy

        stratum.register_routine("""
        CREATE FUNCTION selfref2 () RETURNS FLOAT READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE p FLOAT;
          SET p = (SELECT price FROM item WHERE id = 'i1');
          SET p = p + 1.0;
          RETURN p;
        END
        """)
        stratum.execute(
            "VALIDTIME [DATE '2010-02-01', DATE '2010-03-01']"
            " SELECT selfref2() FROM item",
            strategy=SlicingStrategy.COST,
        )
        assert stratum.last_strategy is SlicingStrategy.MAX

    def test_cost_matches_estimate(self, stratum):
        from repro.sqlengine.parser import parse_statement
        from repro.temporal import SlicingStrategy

        sql = (
            "VALIDTIME [DATE '2010-01-01', DATE '2010-12-01']"
            " SELECT get_author_name('a1') AS n FROM item"
        )
        stratum.execute(sql, strategy=SlicingStrategy.COST)
        picked = stratum.last_strategy
        estimate = estimate_costs(
            parse_statement(sql), stratum.db, stratum.registry,
            Period.from_iso("2010-01-01", "2010-12-01"),
        )
        expected = (
            SlicingStrategy.PERST if estimate.prefers_perst else SlicingStrategy.MAX
        )
        assert picked is expected
