"""Sequenced modification tests: VALIDTIME INSERT / UPDATE / DELETE."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine.values import Date
from repro.temporal import TemporalStratum
from repro.temporal.errors import TemporalError
from repro.temporal.period import Period, coalesce

from tests.conftest import make_bookstore


@pytest.fixture
def stratum():
    return make_bookstore()


def history(stratum, item_id):
    rows = stratum.execute(
        "NONSEQUENCED VALIDTIME SELECT price, begin_time, end_time"
        f" FROM item WHERE id = '{item_id}' ORDER BY begin_time"
    ).rows
    return [
        (row[0], row[1].to_iso(), row[2].to_iso()) for row in rows
    ]


class TestSequencedDelete:
    def test_middle_cut_splits_period(self, stratum):
        # Book One valid [2010-01-15, forever); remove March
        count = stratum.execute(
            "VALIDTIME [DATE '2010-03-01', DATE '2010-04-01']"
            " DELETE FROM item WHERE id = 'i1'"
        )
        assert count == 1
        assert history(stratum, "i1") == [
            (25.0, "2010-01-15", "2010-03-01"),
            (25.0, "2010-04-01", "9999-12-31"),
        ]

    def test_full_cover_removes_row(self, stratum):
        stratum.execute(
            "VALIDTIME [DATE '2010-01-01', DATE '9999-12-31']"
            " DELETE FROM item WHERE id = 'i2'"
        )
        assert history(stratum, "i2") == []

    def test_left_overlap_trims(self, stratum):
        stratum.execute(
            "VALIDTIME [DATE '2010-01-01', DATE '2010-02-01']"
            " DELETE FROM item WHERE id = 'i1'"
        )
        assert history(stratum, "i1") == [(25.0, "2010-02-01", "9999-12-31")]

    def test_non_overlapping_context_no_effect(self, stratum):
        count = stratum.execute(
            "VALIDTIME [DATE '2009-01-01', DATE '2009-06-01']"
            " DELETE FROM item WHERE id = 'i1'"
        )
        assert count == 0
        assert len(history(stratum, "i1")) == 1

    def test_predicate_respected(self, stratum):
        stratum.execute(
            "VALIDTIME [DATE '2010-01-01', DATE '9999-12-31']"
            " DELETE FROM item WHERE price > 50.0"
        )
        assert history(stratum, "i1") != []  # 25.0 kept
        assert history(stratum, "i2") == []  # 80.0 removed

    def test_requires_temporal_table(self, stratum):
        stratum.db.execute("CREATE TABLE plain (x INTEGER)")
        with pytest.raises(TemporalError):
            stratum.execute(
                "VALIDTIME [DATE '2010-01-01', DATE '2011-01-01']"
                " DELETE FROM plain"
            )


class TestSequencedUpdate:
    def test_middle_update_splits_into_three(self, stratum):
        stratum.execute(
            "VALIDTIME [DATE '2010-03-01', DATE '2010-04-01']"
            " UPDATE item SET price = 99.0 WHERE id = 'i1'"
        )
        assert history(stratum, "i1") == [
            (25.0, "2010-01-15", "2010-03-01"),
            (99.0, "2010-03-01", "2010-04-01"),
            (25.0, "2010-04-01", "9999-12-31"),
        ]

    def test_update_whole_period(self, stratum):
        stratum.execute(
            "VALIDTIME [DATE '2010-01-01', DATE '9999-12-31']"
            " UPDATE item SET price = 1.0 WHERE id = 'i1'"
        )
        assert history(stratum, "i1") == [(1.0, "2010-01-15", "9999-12-31")]

    def test_assignment_sees_old_values(self, stratum):
        stratum.execute(
            "VALIDTIME [DATE '2010-03-01', DATE '2010-04-01']"
            " UPDATE item SET price = price * 2.0 WHERE id = 'i1'"
        )
        assert (50.0, "2010-03-01", "2010-04-01") in history(stratum, "i1")

    def test_timestamp_assignment_rejected(self, stratum):
        with pytest.raises(TemporalError):
            stratum.execute(
                "VALIDTIME [DATE '2010-01-01', DATE '2011-01-01']"
                " UPDATE item SET begin_time = DATE '2000-01-01'"
            )

    def test_snapshot_after_update(self, stratum):
        stratum.execute(
            "VALIDTIME [DATE '2010-03-01', DATE '2010-04-01']"
            " UPDATE item SET price = 99.0 WHERE id = 'i1'"
        )
        stratum.db.now = Date.from_ymd(2010, 3, 15)
        assert stratum.execute(
            "SELECT price FROM item WHERE id = 'i1'"
        ).scalar() == 99.0
        stratum.db.now = Date.from_ymd(2010, 5, 1)
        assert stratum.execute(
            "SELECT price FROM item WHERE id = 'i1'"
        ).scalar() == 25.0


class TestSequencedInsert:
    def test_insert_stamped_with_context(self, stratum):
        stratum.execute(
            "VALIDTIME [DATE '2010-02-01', DATE '2010-05-01']"
            " INSERT INTO item (id, title, price) VALUES ('i9', 'Pop-up', 5.0)"
        )
        assert history(stratum, "i9") == [(5.0, "2010-02-01", "2010-05-01")]

    def test_insert_select_form(self, stratum):
        stratum.execute(
            "VALIDTIME [DATE '2010-02-01', DATE '2010-03-01']"
            " INSERT INTO item (id, title, price)"
            " SELECT 'i9', title, price FROM item WHERE id = 'i1'"
        )
        assert history(stratum, "i9") == [(25.0, "2010-02-01", "2010-03-01")]

    def test_explicit_timestamps_rejected(self, stratum):
        with pytest.raises(TemporalError):
            stratum.execute(
                "VALIDTIME [DATE '2010-02-01', DATE '2010-05-01']"
                " INSERT INTO item (id, title, price, begin_time)"
                " VALUES ('i9', 'X', 1.0, DATE '2010-01-01')"
            )

    def test_transaction_time_modification_rejected(self):
        s = TemporalStratum()
        s.db.execute("CREATE TABLE t (a INTEGER)")
        s.execute("ALTER TABLE t ADD TRANSACTIONTIME")
        with pytest.raises(TemporalError):
            s.execute(
                "TRANSACTIONTIME [DATE '2010-01-01', DATE '2011-01-01']"
                " DELETE FROM t"
            )


class TestSequencedModificationProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        row_begin=st.integers(min_value=0, max_value=50),
        row_len=st.integers(min_value=1, max_value=50),
        cut_begin=st.integers(min_value=0, max_value=50),
        cut_len=st.integers(min_value=1, max_value=50),
    )
    def test_delete_removes_exactly_the_cut(
        self, row_begin, row_len, cut_begin, cut_len
    ):
        base = Date.from_ymd(2010, 1, 1).ordinal
        stratum = TemporalStratum()
        stratum.create_temporal_table(
            "CREATE TABLE h (v INTEGER, begin_time DATE, end_time DATE)"
        )
        row_period = Period(base + row_begin, base + row_begin + row_len)
        cut = Period(base + cut_begin, base + cut_begin + cut_len)
        stratum.db.insert_rows(
            "h", [[1, Date(row_period.begin), Date(row_period.end)]]
        )
        stratum.execute(
            f"VALIDTIME [DATE '{Date(cut.begin).to_iso()}',"
            f" DATE '{Date(cut.end).to_iso()}'] DELETE FROM h"
        )
        remaining = [
            Period(r[1].ordinal, r[2].ordinal)
            for r in stratum.db.catalog.get_table("h").rows
        ]
        expected_granules = {
            g for g in row_period.granules() if not cut.contains(g)
        }
        got_granules = {g for p in remaining for g in p.granules()}
        assert got_granules == expected_granules
        # pieces never overlap
        merged = coalesce([((1,), p) for p in remaining])
        assert len(merged) == len(remaining)
