"""Experiment-module tests (fast configurations via the env knobs)."""

import os

import pytest

from repro.bench import experiments


@pytest.fixture
def tiny_env(monkeypatch):
    monkeypatch.setenv("TAUPSM_QUERIES", "q5,q19")
    monkeypatch.setenv("TAUPSM_MAX_CONTEXT", "7")


class TestSelection:
    def test_query_selection_env(self, tiny_env):
        names = [q.name for q in experiments._selected_queries()]
        assert names == ["q5", "q19"]

    def test_context_cap_env(self, tiny_env):
        assert experiments._selected_contexts() == [1, 7]

    def test_defaults_without_env(self, monkeypatch):
        monkeypatch.delenv("TAUPSM_QUERIES", raising=False)
        monkeypatch.delenv("TAUPSM_MAX_CONTEXT", raising=False)
        assert len(experiments._selected_queries()) == 16
        assert experiments._selected_contexts() == [1, 7, 30, 365]


class TestFigureTwelve:
    def test_small_sweep(self, tiny_env):
        result = experiments.fig12_context_small()
        assert "Figure 12" in result.report
        assert "routine invocations" in result.report
        # 2 queries x 2 contexts x 2 strategies
        assert len(result.cells) == 8
        assert all(c.ok for c in result.cells)

    def test_classes_reported(self, tiny_env):
        result = experiments.fig12_context_small()
        assert "query classes" in result.report
        assert "q5:" in result.report


class TestFigureFifteen:
    def test_dataset_keys_rewritten(self, tiny_env):
        result = experiments.fig15_data_characteristics(context_days=7)
        datasets = {c.dataset for c in result.cells}
        assert datasets == {"DS1", "DS2", "DS3"}


class TestLineCounts:
    def test_totals_ordered(self):
        result = experiments.line_counts()
        total_line = next(
            line for line in result.report.splitlines() if line.startswith("total")
        )
        _, original, max_tokens, perst_tokens = total_line.split()
        assert int(original) < int(max_tokens) < int(perst_tokens)

    def test_q17b_has_no_perst_tokens(self):
        result = experiments.line_counts()
        q17b_line = next(
            line for line in result.report.splitlines() if line.startswith("q17b")
        )
        assert q17b_line.split()[-1] == "0"


class TestHeuristicEvaluation:
    def test_evaluation_over_measured_cells(self, tiny_env):
        cells = experiments.fig12_context_small().cells
        result = experiments.heuristic_evaluation(cells)
        assert "heuristic correct" in result.report
        assert "cost model correct" in result.report
        assert "rule firings" in result.report

    def test_empty_pool(self):
        result = experiments.heuristic_evaluation([])
        assert "no cells" in result.report or "0" in result.report
