"""Dataset persistence round-trip tests."""

import pytest

from repro.sqlengine import Database
from repro.sqlengine.values import Date, Null
from repro.taubench import schema
from repro.taubench.io import (
    DatasetLoadError,
    copy_dataset_into,
    export_dataset,
    export_table,
    import_dataset,
    import_table,
)
from repro.temporal import SlicingStrategy
from repro.temporal.period import Period
from repro.temporal.validate import check_strategy_equivalence


class TestTableRoundTrip:
    @pytest.fixture
    def db(self):
        db = Database()
        db.execute(
            "CREATE TABLE t (a INTEGER, b CHAR(10), c FLOAT, d DATE)"
        )
        db.execute(
            "INSERT INTO t VALUES (1, 'x', 2.5, DATE '2010-06-01')"
        )
        db.execute("INSERT INTO t (a) VALUES (2)")  # NULLs in b, c, d
        return db

    def test_round_trip_preserves_values(self, db, tmp_path):
        export_table(db.catalog.get_table("t"), tmp_path / "t.csv")
        db2 = Database()
        db2.execute("CREATE TABLE t (a INTEGER, b CHAR(10), c FLOAT, d DATE)")
        count = import_table(db2, "t", tmp_path / "t.csv")
        assert count == 2
        rows = db2.query("SELECT a, b, c, d FROM t ORDER BY a").rows
        assert rows[0] == [1, "x", 2.5, Date.from_iso("2010-06-01")]
        assert rows[1][1] is Null and rows[1][3] is Null

    def test_header_mismatch_rejected(self, db, tmp_path):
        export_table(db.catalog.get_table("t"), tmp_path / "t.csv")
        db2 = Database()
        db2.execute("CREATE TABLE t (x INTEGER, b CHAR(10), c FLOAT, d DATE)")
        with pytest.raises(ValueError):
            import_table(db2, "t", tmp_path / "t.csv")


class TestCorruptFixtures:
    @pytest.fixture
    def db(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, d DATE)")
        return db

    def test_empty_file_rejected(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(DatasetLoadError, match="empty file"):
            import_table(db, "t", path)

    def test_wrong_field_count_names_file_and_line(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,d\n1,2010-06-01\n2,2010-06-02,EXTRA\n")
        with pytest.raises(DatasetLoadError, match=r"t\.csv, line 3"):
            import_table(db, "t", path)

    def test_bad_value_names_file_line_and_column(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,d\n1,2010-06-01\nnope,2010-06-02\n")
        with pytest.raises(
            DatasetLoadError, match=r"t\.csv, line 3, column a"
        ):
            import_table(db, "t", path)

    def test_bad_date_names_file_line_and_column(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,d\n1,not-a-date\n")
        with pytest.raises(
            DatasetLoadError, match=r"t\.csv, line 2, column d"
        ):
            import_table(db, "t", path)

    def test_load_error_is_a_value_error(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            import_table(db, "t", path)


class TestCopyDatasetInto:
    def test_copy_into_fresh_stratum(self, small_dataset):
        from repro.temporal.stratum import TemporalStratum

        target = TemporalStratum()
        copied = copy_dataset_into(target, small_dataset)
        assert copied.stratum is target
        assert copied.probe_item_id == small_dataset.probe_item_id
        assert target.db.now == small_dataset.stratum.db.now
        for table_name in schema.TABLE_NAMES:
            original = small_dataset.stratum.db.catalog.get_table(table_name)
            restored = target.db.catalog.get_table(table_name)
            assert original.rows == restored.rows
            assert target.registry.is_temporal(table_name)


class TestDatasetRoundTrip:
    def test_export_import_identical_tables(self, small_dataset, tmp_path):
        export_dataset(small_dataset, tmp_path / "ds")
        loaded = import_dataset(tmp_path / "ds")
        assert loaded.spec.key == small_dataset.spec.key
        assert loaded.probe_item_id == small_dataset.probe_item_id
        for table_name in schema.TABLE_NAMES:
            original = small_dataset.stratum.db.catalog.get_table(table_name)
            restored = loaded.stratum.db.catalog.get_table(table_name)
            assert len(original) == len(restored)
            assert original.rows == restored.rows

    def test_imported_dataset_is_queryable(self, small_dataset, tmp_path):
        export_dataset(small_dataset, tmp_path / "ds")
        loaded = import_dataset(tmp_path / "ds")
        from repro.taubench import get_query

        query = get_query("q2")
        query.install(loaded)
        sequenced = query.sequenced_sql(loaded, "2010-02-01", "2010-02-15")
        ok, message = check_strategy_equivalence(
            loaded.stratum, sequenced, Period.from_iso("2010-02-01", "2010-02-15")
        )
        assert ok, message

    def test_manifest_written(self, small_dataset, tmp_path):
        directory = export_dataset(small_dataset, tmp_path / "ds")
        manifest = (directory / "manifest.txt").read_text()
        assert "name=DS1" in manifest
        assert "size=SMALL" in manifest
