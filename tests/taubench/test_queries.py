"""τPSM query-suite tests: every query installs, parses and runs."""

import pytest

from repro.sqlengine.parser import parse_statement
from repro.taubench import ALL_QUERIES, get_query
from repro.taubench.queries import QuerySpec


class TestSuiteShape:
    def test_sixteen_queries(self):
        assert len(ALL_QUERIES) == 16

    def test_names_match_paper(self):
        names = [q.name for q in ALL_QUERIES]
        assert names == [
            "q2", "q2b", "q3", "q5", "q6", "q7", "q7b", "q8", "q9", "q10",
            "q11", "q14", "q17", "q17b", "q19", "q20",
        ]

    def test_only_q17b_perst_inapplicable(self):
        flagged = [q.name for q in ALL_QUERIES if not q.perst_applicable]
        assert flagged == ["q17b"]

    def test_cursor_queries_flagged(self):
        cursored = {q.name for q in ALL_QUERIES if q.uses_cursor}
        assert cursored == {"q7", "q7b", "q14", "q17", "q17b"}

    def test_get_query(self):
        assert get_query("Q2").name == "q2"
        with pytest.raises(KeyError):
            get_query("q99")


@pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
class TestEachQuery:
    def test_routines_parse(self, query: QuerySpec):
        for routine in query.routines:
            parse_statement(routine)

    def test_install_idempotent(self, query: QuerySpec, small_dataset):
        query.install(small_dataset)
        query.install(small_dataset)  # re-install must not raise

    def test_conventional_sql_parses(self, query: QuerySpec, small_dataset):
        parse_statement(query.conventional_sql(small_dataset))

    def test_sequenced_sql_has_modifier(self, query: QuerySpec, small_dataset):
        stmt = parse_statement(
            query.sequenced_sql(small_dataset, "2010-02-01", "2010-03-01")
        )
        assert stmt.modifier is not None

    def test_current_execution_non_empty(self, query: QuerySpec, small_dataset):
        """The paper adjusted q2 so results are never empty; we require
        the same of every query under current semantics."""
        query.install(small_dataset)
        result = small_dataset.stratum.execute(
            query.conventional_sql(small_dataset)
        )
        if isinstance(result, list):  # procedure result sets
            assert sum(len(r.rows) for r in result) > 0
        else:
            assert len(result.rows) > 0


class TestFeatureConstructs:
    """Each query must actually contain the construct it is named for."""

    def _routine_text(self, name):
        return " ".join(get_query(name).routines)

    def test_q2_has_set_select_row(self):
        assert "SET fname = (SELECT" in self._routine_text("q2")

    def test_q2b_has_multiple_sets(self):
        text = self._routine_text("q2b")
        assert text.count("SET ") >= 2

    def test_q3_returns_select_row(self):
        assert "RETURN (SELECT" in self._routine_text("q3")

    def test_q6_has_case(self):
        assert "CASE" in self._routine_text("q6")

    def test_q7_has_while(self):
        assert "WHILE" in self._routine_text("q7")

    def test_q7b_has_repeat(self):
        assert "REPEAT" in self._routine_text("q7b")

    def test_q8_has_labeled_for(self):
        assert "f1: FOR" in self._routine_text("q8")

    def test_q9_has_nested_call(self):
        assert "CALL publisher_items" in self._routine_text("q9")

    def test_q10_has_if(self):
        assert "IF" in self._routine_text("q10")

    def test_q11_creates_temp_table(self):
        assert "CREATE TEMPORARY TABLE" in self._routine_text("q11")

    def test_q14_has_cursor_verbs(self):
        text = self._routine_text("q14")
        for verb in ("CURSOR", "OPEN", "FETCH", "CLOSE"):
            assert verb in text

    def test_q17_has_leave(self):
        assert "LEAVE" in self._routine_text("q17")

    def test_q17b_fetch_after_calls(self):
        text = self._routine_text("q17b")
        loop = text[text.index("WHILE"):]
        assert loop.index("has_canadian_author") < loop.rindex("FETCH")

    def test_q19_called_in_from(self, small_dataset):
        sql = get_query("q19").conventional_sql(small_dataset)
        assert "FROM TABLE(authors_of" in sql

    def test_q20_has_set(self):
        assert "SET d = p * 0.9" in self._routine_text("q20")
