"""Dataset specification and loading tests."""

import pytest

from repro.taubench import schema
from repro.taubench.datasets import build_dataset, dataset_spec


class TestSpecs:
    def test_ds1_weekly(self):
        spec = dataset_spec("DS1", "SMALL")
        assert spec.num_steps == 104
        assert spec.step_days == 7
        assert spec.distribution == "uniform"

    def test_ds2_gaussian(self):
        assert dataset_spec("DS2", "SMALL").distribution == "gaussian"

    def test_ds3_daily_same_total_changes(self):
        ds1 = dataset_spec("DS1", "SMALL")
        ds3 = dataset_spec("DS3", "SMALL")
        assert ds3.num_steps == 693
        assert ds3.step_days == 1
        assert ds3.total_changes == ds1.total_changes  # paper §VII-A1

    def test_sizes_scale(self):
        small = dataset_spec("DS1", "SMALL")
        large = dataset_spec("DS1", "LARGE")
        assert large.num_items == 10 * small.num_items
        assert large.total_changes == 10 * small.total_changes

    def test_unknown_names_raise(self):
        with pytest.raises(ValueError):
            dataset_spec("DS9", "SMALL")
        with pytest.raises(ValueError):
            dataset_spec("DS1", "TINY")

    def test_key_and_timeline(self):
        spec = dataset_spec("DS1", "MEDIUM")
        assert spec.key == "DS1.MEDIUM"
        assert spec.timeline.duration >= 104 * 7


class TestLoadedDataset:
    def test_all_tables_present_and_temporal(self, small_dataset):
        for table in schema.TABLE_NAMES:
            assert small_dataset.stratum.registry.is_temporal(table)
            assert len(small_dataset.stratum.db.catalog.get_table(table)) > 0

    def test_probe_values_exist_currently(self, small_dataset):
        stratum = small_dataset.stratum
        result = stratum.execute(
            "SELECT author_id FROM author"
            f" WHERE author_id = '{small_dataset.probe_author_id}'"
        )
        assert len(result.rows) == 1

    def test_cold_author_linked_to_cold_item(self, small_dataset):
        stratum = small_dataset.stratum
        result = stratum.execute(
            "NONSEQUENCED VALIDTIME SELECT item_id FROM item_author"
            f" WHERE item_id = '{small_dataset.cold_item_id}'"
            f" AND author_id = '{small_dataset.cold_author_id}'"
        )
        assert len(result.rows) >= 1

    def test_context_inside_timeline(self, small_dataset):
        context = small_dataset.context(30)
        assert small_dataset.timeline.contains_period(context)

    def test_total_rows_counts_versions(self, small_dataset):
        assert small_dataset.total_rows() > (
            small_dataset.spec.num_items
            + small_dataset.spec.num_authors
            + small_dataset.spec.num_publishers
        )
