"""Catalog generator tests."""

from repro.taubench.generator import generate_catalog


class TestDeterminism:
    def test_same_seed_same_catalog(self):
        a = generate_catalog(20, 15, 5, seed=42)
        b = generate_catalog(20, 15, 5, seed=42)
        assert a.items == b.items
        assert a.authors == b.authors
        assert a.item_author == b.item_author

    def test_different_seed_differs(self):
        a = generate_catalog(20, 15, 5, seed=1)
        b = generate_catalog(20, 15, 5, seed=2)
        assert a.items != b.items


class TestCardinalities:
    def test_requested_counts(self):
        data = generate_catalog(20, 15, 5)
        assert len(data.items) == 20
        assert len(data.authors) == 15
        assert len(data.publishers) == 5

    def test_one_publisher_link_per_item(self):
        data = generate_catalog(20, 15, 5)
        assert len(data.item_publisher) == 20

    def test_one_to_three_authors_per_item(self):
        data = generate_catalog(30, 15, 5)
        per_item = {}
        for item_id, _ in data.item_author:
            per_item[item_id] = per_item.get(item_id, 0) + 1
        assert all(1 <= n <= 3 for n in per_item.values())
        assert len(per_item) == 30

    def test_related_items_reference_existing(self):
        data = generate_catalog(30, 15, 5)
        ids = {item[0] for item in data.items}
        for item_id, related_id in data.related_items:
            assert item_id in ids
            assert related_id in ids
            assert item_id != related_id


class TestContent:
    def test_ids_are_stable_format(self):
        data = generate_catalog(5, 5, 2)
        assert data.items[0][0] == "i0000000"
        assert data.authors[0][0] == "a0000000"
        assert data.publishers[0][0] == "p0000000"

    def test_foreign_keys_resolve(self):
        data = generate_catalog(20, 15, 5)
        publishers = {p[0] for p in data.publishers}
        authors = {a[0] for a in data.authors}
        for item in data.items:
            assert item[2] in publishers
        for _, author_id in data.item_author:
            assert author_id in authors

    def test_prices_and_pages_in_range(self):
        data = generate_catalog(20, 15, 5)
        for item in data.items:
            assert 80 <= item[4] <= 900
            assert 5.0 <= item[5] <= 120.0

    def test_table_rows_mapping(self):
        data = generate_catalog(5, 5, 2)
        rows = data.table_rows()
        assert set(rows) == {
            "publisher", "author", "item", "related_items",
            "item_author", "item_publisher",
        }
