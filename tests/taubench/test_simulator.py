"""Temporal change-simulation tests: version-chain invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine.values import Date
from repro.taubench.generator import generate_catalog
from repro.taubench.simulator import FOREVER, TIMELINE_BEGIN, simulate


@pytest.fixture(scope="module")
def simulated():
    catalog = generate_catalog(20, 15, 5, seed=42)
    return simulate(catalog, num_steps=10, step_days=7, total_changes=60, seed=7)


def chains(rows, key_index):
    """Group version rows by entity key."""
    by_key = {}
    for row in rows:
        by_key.setdefault(row[key_index], []).append(row)
    return by_key


class TestVersionChains:
    def test_versions_per_item_partition_timeline(self, simulated):
        for key, versions in chains(simulated["item"], 0).items():
            versions.sort(key=lambda r: r[-2].ordinal)
            assert versions[0][-2] == TIMELINE_BEGIN
            assert versions[-1][-1] == FOREVER
            for left, right in zip(versions, versions[1:]):
                assert left[-1] == right[-2]  # meet exactly

    def test_no_empty_periods(self, simulated):
        for rows in simulated.values():
            for row in rows:
                assert row[-2].ordinal < row[-1].ordinal

    def test_consecutive_versions_differ(self, simulated):
        for key, versions in chains(simulated["item"], 0).items():
            versions.sort(key=lambda r: r[-2].ordinal)
            for left, right in zip(versions, versions[1:]):
                assert left[:-2] != right[:-2]

    def test_total_change_count(self, simulated):
        extra_versions = sum(
            len(rows) for rows in simulated.values()
        ) - sum(
            len({tuple([row[0], row[1]]) if name in
                 ("related_items", "item_author", "item_publisher")
                 else row[0] for row in rows})
            for name, rows in simulated.items()
        )
        # every applied change adds exactly one version; the simulator
        # aims for the requested total (it may fall slightly short when
        # it cannot find a fresh victim, never over)
        assert 0 < extra_versions <= 60


class TestDistributions:
    def test_deterministic(self):
        catalog = generate_catalog(20, 15, 5, seed=42)
        a = simulate(catalog, 10, 7, 60, seed=7)
        b = simulate(catalog, 10, 7, 60, seed=7)
        assert a == b

    def test_gaussian_concentrates_on_hot_items(self):
        catalog = generate_catalog(60, 30, 8, seed=42)
        uniform = simulate(catalog, 20, 7, 300, distribution="uniform", seed=7)
        gaussian = simulate(catalog, 20, 7, 300, distribution="gaussian", seed=7)

        def change_counts(rows):
            counts = {}
            for row in rows:
                counts[row[0]] = counts.get(row[0], 0) + 1
            return counts

        hot = f"i{30:07d}"  # centre of the Gaussian
        cold = "i0000000"
        g = change_counts(gaussian["item"])
        u = change_counts(uniform["item"])
        # the hot-spot item has more versions under Gaussian than the
        # cold item does
        assert g.get(hot, 0) > g.get(cold, 0)
        # and the Gaussian run is more concentrated overall
        assert max(g.values()) >= max(u.values())

    def test_change_points_align_to_steps(self):
        catalog = generate_catalog(20, 15, 5, seed=42)
        result = simulate(catalog, 10, 7, 60, seed=7)
        valid_points = {
            TIMELINE_BEGIN.ordinal + (step + 1) * 7 for step in range(10)
        } | {TIMELINE_BEGIN.ordinal, FOREVER.ordinal}
        for rows in result.values():
            for row in rows:
                assert row[-2].ordinal in valid_points
                assert row[-1].ordinal in valid_points

    @settings(max_examples=10, deadline=None)
    @given(
        steps=st.integers(min_value=1, max_value=12),
        changes=st.integers(min_value=0, max_value=40),
    )
    def test_chain_invariants_hold_for_any_parameters(self, steps, changes):
        catalog = generate_catalog(10, 8, 3, seed=5)
        result = simulate(catalog, steps, 7, changes, seed=3)
        for rows in result.values():
            for row in rows:
                assert row[-2].ordinal < row[-1].ordinal
        for key, versions in chains(result["author"], 0).items():
            versions.sort(key=lambda r: r[-2].ordinal)
            for left, right in zip(versions, versions[1:]):
                assert left[-1] == right[-2]
