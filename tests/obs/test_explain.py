"""EXPLAIN rendering: golden snapshots and the ANALYZE report.

Golden files live in ``tests/obs/golden/``; regenerate them after an
intentional output change with::

    TAUPSM_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_explain.py

Only plain ``EXPLAIN`` output is snapshotted — it is fully
deterministic (no timings).  ``EXPLAIN ANALYZE`` is asserted
structurally instead: the measured section must report the slice
count, per-slice wall time, routine invocations and cache traffic the
acceptance bar names.
"""

import os
import re
from pathlib import Path

import pytest

from repro.bench.harness import context_bounds
from repro.obs.explain import ExplainResult
from repro.taubench import get_query
from repro.temporal import SlicingStrategy

from tests.conftest import GET_AUTHOR_NAME, make_bookstore

GOLDEN = Path(__file__).parent / "golden"
UPDATE = os.environ.get("TAUPSM_UPDATE_GOLDEN") == "1"


def check_golden(name: str, text: str) -> None:
    path = GOLDEN / f"{name}.txt"
    if UPDATE:
        GOLDEN.mkdir(exist_ok=True)
        path.write_text(text + "\n")
    assert path.exists(), (
        f"golden file missing: {path} — regenerate with TAUPSM_UPDATE_GOLDEN=1"
    )
    assert text + "\n" == path.read_text(), (
        f"EXPLAIN output drifted from {path.name};"
        " regenerate with TAUPSM_UPDATE_GOLDEN=1 if intentional"
    )


@pytest.fixture
def stratum():
    s = make_bookstore()
    s.register_routine(GET_AUTHOR_NAME)
    return s


RUNNING_EXAMPLE = (
    "EXPLAIN VALIDTIME [DATE '2010-01-01', DATE '2011-01-01']"
    " SELECT get_author_name('a1') AS name FROM item"
)


class TestGoldenRunningExample:
    def test_max(self, stratum):
        result = stratum.execute(RUNNING_EXAMPLE, strategy=SlicingStrategy.MAX)
        check_golden("running_example_max", result.text())

    def test_perst(self, stratum):
        result = stratum.execute(RUNNING_EXAMPLE, strategy=SlicingStrategy.PERST)
        check_golden("running_example_perst", result.text())

    def test_auto_reports_heuristic_rule(self, stratum):
        result = stratum.execute(RUNNING_EXAMPLE)
        check_golden("running_example_auto", result.text())

    def test_current(self, stratum):
        result = stratum.execute("EXPLAIN SELECT get_author_name('a1') AS n")
        check_golden("running_example_current", result.text())

    def test_nonsequenced(self, stratum):
        result = stratum.execute(
            "EXPLAIN NONSEQUENCED VALIDTIME SELECT id, begin_time FROM item"
        )
        check_golden("running_example_nonsequenced", result.text())


class TestGoldenIntervalIndex:
    """Index-backed plans: a stab-shaped engine statement and the PERST
    algebraic fragment both render IntervalIndexScan leaves."""

    def test_engine_stab_plan(self, stratum):
        result = stratum.db.execute(
            "EXPLAIN SELECT i.id FROM item i"
            " WHERE i.begin_time <= DATE '2010-04-01'"
            " AND DATE '2010-04-01' < i.end_time"
        )
        assert any("IntervalIndexScan" in line for line in result.lines)
        check_golden("interval_stab_plan", result.text())

    def test_sequenced_algebraic_plan(self, stratum):
        result = stratum.execute(
            "EXPLAIN VALIDTIME [DATE '2010-01-01', DATE '2011-01-01']"
            " SELECT i.id, i.price FROM item i",
            strategy=SlicingStrategy.PERST,
        )
        assert any("IntervalIndexScan" in line for line in result.lines)
        check_golden("interval_sequenced_perst_plan", result.text())


class TestGoldenVectorized:
    """Pin the compile-time vectorized-vs-fallback decision per scan.

    The planner annotates every scan with how its pushed-down conjuncts
    will run: ``vectorized filter`` when every conjunct compiled to a
    column-batch kernel, ``row-at-a-time filter`` otherwise."""

    def test_vectorized_filter_plan(self, stratum):
        result = stratum.db.execute(
            "EXPLAIN SELECT i.id FROM item i WHERE i.price > 30.0"
        )
        assert any("vectorized filter" in line for line in result.lines)
        check_golden("vectorized_filter_plan", result.text())

    def test_fallback_filter_plan(self, stratum):
        # arithmetic inside the comparison has no batch kernel, so the
        # conjunct set falls back to the interpreted row path
        result = stratum.db.execute(
            "EXPLAIN SELECT i.id FROM item i WHERE i.price + 1.0 > 30.0"
        )
        assert any("row-at-a-time filter" in line for line in result.lines)
        assert not any("vectorized" in line for line in result.lines)
        check_golden("fallback_filter_plan", result.text())

    def test_mixed_conjuncts_fall_back(self, stratum):
        # one kernelizable conjunct + one that is not: partial batches
        # never apply (they could suppress row-path errors), so the
        # whole scan stays row-at-a-time
        result = stratum.db.execute(
            "EXPLAIN SELECT i.id FROM item i"
            " WHERE i.price > 30.0 AND i.price + 1.0 > 30.0"
        )
        assert any("row-at-a-time filter" in line for line in result.lines)
        check_golden("mixed_filter_plan", result.text())


class TestGoldenBenchmarkQueries:
    """Three τPSM queries on DS1-SMALL (deterministic generator).

    A private dataset, not the session-shared one: the engine-plan
    section shows a cached plan when execution has already bound one,
    so the snapshot is only deterministic from a cold cache.
    """

    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.taubench import build_dataset

        return build_dataset("DS1", "SMALL")

    @pytest.mark.parametrize("name", ["q2", "q10", "q14"])
    def test_query(self, dataset, name):
        query = get_query(name)
        query.install(dataset)
        begin, end = context_bounds(dataset, 90)
        sql = query.sequenced_sql(dataset, begin, end)
        result = dataset.stratum.execute("EXPLAIN " + sql)
        check_golden(f"taubench_{name}", result.text())


class TestExplainSemantics:
    def test_explain_is_side_effect_free(self, stratum):
        stats = stratum.db.stats
        statements_before = stats.statements
        rows_before = stats.rows_written
        result = stratum.execute(RUNNING_EXAMPLE)
        assert isinstance(result, ExplainResult)
        assert result.result is None  # nothing executed
        assert stats.rows_written == rows_before
        # only the EXPLAIN statement itself was counted, not the target
        assert stats.statements <= statements_before + 1

    def test_explain_duck_types_a_result_set(self, stratum):
        result = stratum.execute(RUNNING_EXAMPLE)
        assert result.columns == ["plan"]
        assert [row[0] for row in result.rows] == result.lines
        assert len(result) == len(result.lines)

    def test_requested_strategy_line(self, stratum):
        result = stratum.execute(RUNNING_EXAMPLE, strategy=SlicingStrategy.MAX)
        assert "strategy: max (requested)" in result.lines

    def test_cost_strategy_reports_model_numbers(self, stratum):
        result = stratum.execute(RUNNING_EXAMPLE, strategy=SlicingStrategy.COST)
        line = next(l for l in result.lines if l.startswith("strategy:"))
        assert "cost model" in line and "max=" in line and "perst=" in line

    def test_sequenced_modification(self, stratum):
        result = stratum.execute(
            "EXPLAIN VALIDTIME [DATE '2010-02-01', DATE '2010-03-01']"
            " UPDATE item SET price = 1.0 WHERE id = 'i1'"
        )
        assert any("sequenced modification" in l for l in result.lines)
        # and nothing was modified
        prices = stratum.db.execute("SELECT price FROM item WHERE id = 'i1'")
        assert all(row[0] != 1.0 for row in prices.rows)

    def test_conventional_statement_explains_engine_plan(self, stratum):
        result = stratum.db.execute("EXPLAIN SELECT 1 AS one")
        assert isinstance(result, ExplainResult)
        assert any(line.startswith("engine plan:") for line in result.lines)


class TestExplainAnalyze:
    """The acceptance bar: EXPLAIN ANALYZE on a sequenced query reports
    slice count, per-slice wall time, routine invocations and
    plan/transform cache hits."""

    def test_reports_all_measured_facts(self, stratum):
        sql = (
            "EXPLAIN ANALYZE VALIDTIME [DATE '2010-01-01', DATE '2011-01-01']"
            " SELECT get_author_name('a1') AS name FROM item"
        )
        # run twice so the second pass exercises both caches
        stratum.execute(sql, strategy=SlicingStrategy.MAX)
        result = stratum.execute(sql, strategy=SlicingStrategy.MAX)
        text = result.text()
        slices = re.search(r"slices: (\d+) \(mean ([\d.]+)ms/slice\)", text)
        assert slices, text
        assert int(slices.group(1)) > 0
        calls = re.search(r"routine invocations: (\d+)", text)
        assert calls and int(calls.group(1)) > 0
        assert re.search(r"wall time: [\d.]+ms", text)
        assert re.search(r"plan cache hits: \d+", text)
        assert re.search(r"transform cache hits: \d+", text)
        assert re.search(r"rows scanned: \d+", text)

    def test_executes_and_keeps_the_result(self, stratum):
        result = stratum.execute(
            "EXPLAIN ANALYZE VALIDTIME [DATE '2010-01-01', DATE '2011-01-01']"
            " SELECT get_author_name('a1') AS name FROM item",
            strategy=SlicingStrategy.MAX,
        )
        assert result.result is not None
        names = {values[0] for values, _ in result.result.coalesced()}
        assert names == {"Ben", "Benjamin"}

    def test_trace_tree_is_rendered(self, stratum):
        result = stratum.execute(
            "EXPLAIN ANALYZE VALIDTIME [DATE '2010-01-01', DATE '2011-01-01']"
            " SELECT i.id FROM item i",
            strategy=SlicingStrategy.PERST,
        )
        text = result.text()
        assert "trace:" in text
        assert "stratum.transform" in text
        assert "stratum.perst.execute" in text

    def test_tracer_state_restored(self, stratum):
        assert stratum.db.tracer.enabled is False
        stratum.execute(
            "EXPLAIN ANALYZE VALIDTIME [DATE '2010-01-01', DATE '2011-01-01']"
            " SELECT i.id FROM item i"
        )
        assert stratum.db.tracer.enabled is False

    def test_analyze_slice_count_matches_registry(self, stratum):
        obs = stratum.db.obs
        before = obs.value("stratum.slices")
        result = stratum.execute(
            "EXPLAIN ANALYZE VALIDTIME [DATE '2010-01-01', DATE '2011-01-01']"
            " SELECT i.id FROM item i",
            strategy=SlicingStrategy.MAX,
        )
        delta = obs.value("stratum.slices") - before
        reported = re.search(r"slices: (\d+) ", result.text())
        assert reported and int(reported.group(1)) == delta
