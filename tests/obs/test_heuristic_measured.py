"""The §VII-F heuristic against the metrics registry.

Two guarantees:

* **Differential** — after a seeded warm-up workload populates the
  per-slice and per-row timers, the measured-cost mode of
  :func:`estimate_costs` must reach the same MAX/PERST preference as
  the static calibration on q10 and q14 (the tie band and the
  static fallback exist precisely so measurement noise cannot flip a
  confident static decision).
* **Regression** — the rule (a/b/c/default) that fires for every
  benchmark query on DS1-SMALL is pinned, at a 90-day context and at
  the paper's one-week "short context" boundary.
"""

import pytest

from repro.bench.harness import context_bounds
from repro.sqlengine.parser import parse_statement
from repro.taubench import ALL_QUERIES, get_query
from repro.temporal import SlicingStrategy
from repro.temporal.heuristic import choose_strategy, estimate_costs

CONTEXT_DAYS = 90


def sequenced_stmt(dataset, query, days=CONTEXT_DAYS):
    query.install(dataset)
    begin, end = context_bounds(dataset, days)
    return parse_statement(query.sequenced_sql(dataset, begin, end))


class TestMeasuredCostMode:
    @pytest.fixture(scope="class")
    def warmed(self, small_dataset):
        """Run q10/q14 under both strategies so both timers have samples."""
        stratum = small_dataset.stratum
        for name in ("q10", "q14"):
            query = get_query(name)
            query.install(small_dataset)
            begin, end = context_bounds(small_dataset, CONTEXT_DAYS)
            sql = query.sequenced_sql(small_dataset, begin, end)
            for strategy in (SlicingStrategy.MAX, SlicingStrategy.PERST):
                stratum.execute(sql, strategy=strategy)
        return small_dataset

    @pytest.mark.parametrize("name", ["q10", "q14"])
    def test_measured_agrees_with_static(self, warmed, name):
        stratum = warmed.stratum
        stmt = sequenced_stmt(warmed, get_query(name))
        context = warmed.context(CONTEXT_DAYS)
        static = estimate_costs(
            stmt, stratum.db, stratum.registry, context, mode="static"
        )
        measured = estimate_costs(
            stmt, stratum.db, stratum.registry, context, obs=stratum.db.obs
        )
        assert static.mode == "static"
        assert measured.prefers_perst == static.prefers_perst, (
            f"{name}: measured mode ({measured.mode},"
            f" max={measured.max_cost:.6f} perst={measured.perst_cost:.6f})"
            f" flipped the static decision"
            f" (max={static.max_cost:.6f} perst={static.perst_cost:.6f})"
        )

    def test_static_fallback_without_samples(self, small_dataset):
        """A fresh registry has no timings: measured mode must not engage."""
        from repro.obs.metrics import MetricsRegistry

        stratum = small_dataset.stratum
        stmt = sequenced_stmt(small_dataset, get_query("q2"))
        estimate = estimate_costs(
            stmt,
            stratum.db,
            stratum.registry,
            small_dataset.context(CONTEXT_DAYS),
            obs=MetricsRegistry(),
        )
        assert estimate.mode == "static"

    def test_measured_mode_engages_when_agreeing(self, small_dataset):
        """A decisive measurement that agrees with the static decision
        replaces the static numbers (EXPLAIN then shows seconds)."""
        from repro.obs.metrics import MetricsRegistry

        stratum = small_dataset.stratum
        stmt = sequenced_stmt(small_dataset, get_query("q2"))
        context = small_dataset.context(CONTEXT_DAYS)
        static = estimate_costs(
            stmt, stratum.db, stratum.registry, context, mode="static"
        )
        assert static.prefers_perst
        obs = MetricsRegistry()
        # per-slice work measured far more expensive than per-row work
        obs.timer("stratum.max.slice_seconds").record(1.0, 100)
        obs.timer("stratum.perst.row_seconds").record(0.001, 100)
        estimate = estimate_costs(
            stmt, stratum.db, stratum.registry, context, obs=obs
        )
        assert estimate.mode == "measured"
        assert estimate.prefers_perst

    def test_confident_static_resists_contradiction(self, small_dataset):
        """The timer means aggregate the whole workload, so a decisive
        measurement that *contradicts* a confident static comparison is
        treated as workload-mix artifact: the static decision stands."""
        from repro.obs.metrics import MetricsRegistry

        stratum = small_dataset.stratum
        stmt = sequenced_stmt(small_dataset, get_query("q2"))
        context = small_dataset.context(CONTEXT_DAYS)
        obs = MetricsRegistry()
        # measurement claims slices are nearly free: prefers MAX
        obs.timer("stratum.max.slice_seconds").record(0.001, 100)
        obs.timer("stratum.perst.row_seconds").record(1.0, 100)
        estimate = estimate_costs(
            stmt, stratum.db, stratum.registry, context, obs=obs
        )
        assert estimate.mode == "static"
        assert estimate.prefers_perst

    def test_unconfident_static_defers_to_measurement(self):
        """When the static comparison is itself a near-tie, a decisive
        measurement breaks it."""
        from repro.obs.metrics import MetricsRegistry
        from repro.sqlengine.values import Date
        from repro.temporal import TemporalStratum
        from repro.temporal.period import Period

        stratum = TemporalStratum()
        stratum.create_temporal_table(
            "CREATE TABLE flat (id INTEGER, begin_time DATE, end_time DATE)"
        )
        # 12 rows, one shared period: a single constant period, so the
        # static model lands inside its own confidence band
        for i in range(12):
            stratum.db.insert_rows(
                "flat",
                [[i, Date.from_iso("2010-01-01"), Date.from_iso("9999-12-31")]],
            )
        stmt = parse_statement(
            "VALIDTIME [DATE '2010-02-01', DATE '2010-03-01']"
            " SELECT id FROM flat"
        )
        context = Period(
            Date.from_iso("2010-02-01").ordinal, Date.from_iso("2010-03-01").ordinal
        )
        static = estimate_costs(
            stmt, stratum.db, stratum.registry, context, mode="static"
        )
        assert not static.prefers_perst  # but only just (0.17 vs 0.24)
        obs = MetricsRegistry()
        # measurement decisively disagrees: slices expensive, rows cheap
        obs.timer("stratum.max.slice_seconds").record(1.0, 100)
        obs.timer("stratum.perst.row_seconds").record(0.001, 100)
        estimate = estimate_costs(
            stmt, stratum.db, stratum.registry, context, obs=obs
        )
        assert estimate.mode == "measured"
        assert estimate.prefers_perst

    def test_cost_strategy_executes_either_way(self, warmed):
        """SlicingStrategy.COST end-to-end with a warm registry: the
        decision is recorded and the result matches a forced strategy."""
        stratum = warmed.stratum
        query = get_query("q10")
        begin, end = context_bounds(warmed, CONTEXT_DAYS)
        sql = query.sequenced_sql(warmed, begin, end)
        cost_result = stratum.execute(sql, strategy=SlicingStrategy.COST)
        assert stratum.last_estimate is not None
        chosen = stratum.last_strategy
        assert chosen in (SlicingStrategy.MAX, SlicingStrategy.PERST)
        forced = stratum.execute(sql, strategy=chosen)
        assert sorted(cost_result.coalesced()) == sorted(forced.coalesced())


class TestStaticParityOnExistingCases:
    """Acceptance bar: on the scenarios ``tests/temporal/test_heuristic.py``
    exercises (bookstore + routine / cursor-routine queries), the
    measured-cost mode must pick the same strategy as the static mode
    once real timings from the same workload are in the registry."""

    CASES = [
        ("SELECT get_author_name('a1') AS n FROM item", ("2010-01-01", "2011-01-01")),
        ("SELECT get_author_name('a1') AS n FROM item", ("2010-01-01", "2011-12-01")),
        ("SELECT title FROM item", ("2010-01-01", "2011-01-01")),
        ("SELECT scan_titles() AS n FROM item", ("2010-01-01", "2011-01-01")),
    ]

    @pytest.fixture(scope="class")
    def warmed_bookstore(self):
        from tests.conftest import GET_AUTHOR_NAME, make_bookstore
        from tests.temporal.test_heuristic import CURSOR_FN

        stratum = make_bookstore()
        stratum.register_routine(GET_AUTHOR_NAME)
        stratum.register_routine(CURSOR_FN)
        for query, (begin, end) in self.CASES:
            sql = f"VALIDTIME [DATE '{begin}', DATE '{end}'] " + query
            for strategy in (SlicingStrategy.MAX, SlicingStrategy.PERST):
                stratum.execute(sql, strategy=strategy)
        return stratum

    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_same_decision(self, warmed_bookstore, case):
        from repro.temporal.period import Period

        stratum = warmed_bookstore
        query, (begin, end) = self.CASES[case]
        stmt = parse_statement(query)
        context = Period.from_iso(begin, end)
        static = estimate_costs(
            stmt, stratum.db, stratum.registry, context, mode="static"
        )
        measured = estimate_costs(
            stmt, stratum.db, stratum.registry, context, obs=stratum.db.obs
        )
        assert measured.prefers_perst == static.prefers_perst


# rule fired per query at a 90-day context: everything PERST-able
# defaults to PERST; q17b's nested FETCH makes PERST inapplicable (a)
EXPECTED_RULE_90D = {
    "q2": "default", "q2b": "default", "q3": "default", "q5": "default",
    "q6": "default", "q7": "default", "q7b": "default", "q8": "default",
    "q9": "default", "q10": "default", "q11": "default", "q14": "default",
    "q17": "default", "q17b": "a", "q19": "default", "q20": "default",
}

# at the one-week boundary every applicable query trips rule (c)
# (DS1-SMALL is "small" at ~1k temporal rows)
EXPECTED_RULE_7D = {
    name: ("a" if rule == "a" else "c") for name, rule in EXPECTED_RULE_90D.items()
}

# queries whose reachable routines drive cursors over temporal data:
# with a large data set these trip rule (b)
CURSOR_QUERIES = {"q7", "q7b", "q14", "q17", "q17b"}


class TestRuleRegression:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
    def test_rule_at_90_days(self, small_dataset, query):
        stratum = small_dataset.stratum
        stmt = sequenced_stmt(small_dataset, query)
        choice = choose_strategy(
            stmt, stratum.db, stratum.registry, small_dataset.context(CONTEXT_DAYS)
        )
        assert choice.rule == EXPECTED_RULE_90D[query.name]
        expected = (
            SlicingStrategy.MAX if choice.rule == "a" else SlicingStrategy.PERST
        )
        assert choice.strategy is expected

    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
    def test_rule_at_one_week(self, small_dataset, query):
        stratum = small_dataset.stratum
        stmt = sequenced_stmt(small_dataset, query, days=7)
        choice = choose_strategy(
            stmt, stratum.db, stratum.registry, small_dataset.context(7)
        )
        assert choice.rule == EXPECTED_RULE_7D[query.name]
        assert choice.strategy is SlicingStrategy.MAX

    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
    def test_rule_b_on_large_data(self, small_dataset, query):
        """With the row count forced past the rule-(b) threshold, the
        cursor-driving queries flip to MAX; the rest stay PERST."""
        stratum = small_dataset.stratum
        stmt = sequenced_stmt(small_dataset, query)
        choice = choose_strategy(
            stmt,
            stratum.db,
            stratum.registry,
            small_dataset.context(CONTEXT_DAYS),
            data_rows=10_000,
        )
        if query.name == "q17b":
            assert choice.rule == "a"
        elif query.name in CURSOR_QUERIES:
            assert choice.rule == "b"
            assert choice.strategy is SlicingStrategy.MAX
        else:
            assert choice.rule == "default"
            assert choice.strategy is SlicingStrategy.PERST


class TestIndexedRealityCalibration:
    """The per-slice timer that calibrates the measured mode is recorded
    around the interval-pruned MAX loop, so AUTO/COST unit costs reflect
    indexed (not linear-scan) per-slice work."""

    SCAN_QUERY = "SELECT COUNT(*) AS n FROM item"

    def sequenced(self, dataset, days=CONTEXT_DAYS):
        begin, end = context_bounds(dataset, days)
        return (
            f"VALIDTIME [DATE '{begin}', DATE '{end}'] " + self.SCAN_QUERY
        )

    def test_pruned_loop_feeds_the_slice_timer(self, small_dataset):
        stratum = small_dataset.stratum
        db = stratum.db
        timer = db.obs.timer("stratum.max.slice_seconds")
        samples_before = timer.count
        hits_before = db.obs.value("engine.interval_index_hits")
        stratum.execute(self.sequenced(small_dataset), strategy=SlicingStrategy.MAX)
        # the run recorded per-slice samples AND went through the index
        assert timer.count > samples_before
        assert db.obs.value("engine.interval_index_hits") > hits_before

    def test_measured_max_cost_uses_the_recorded_slice_mean(self, small_dataset):
        from repro.obs.metrics import MetricsRegistry
        from repro.temporal.constant_periods import compute_constant_periods

        stratum = small_dataset.stratum
        db = stratum.db
        stratum.execute(self.sequenced(small_dataset), strategy=SlicingStrategy.MAX)
        slice_mean = db.obs.mean("stratum.max.slice_seconds")
        assert slice_mean is not None and slice_mean > 0.0

        stmt = parse_statement(self.sequenced(small_dataset))
        context = small_dataset.context(CONTEXT_DAYS)
        static = estimate_costs(
            stmt, db, stratum.registry, context, mode="static"
        )
        periods = len(
            compute_constant_periods(db, ["item"], stratum.registry, context)
        )
        # a controlled registry carrying the *real* indexed slice mean and
        # a row mean chosen so the measurement is decisive and agrees with
        # the static preference (so arbitration lets measurement through)
        obs = MetricsRegistry()
        obs.timer("stratum.max.slice_seconds").record(slice_mean * 10, 10)
        row_mean = (
            slice_mean * 1e-6 if static.prefers_perst else slice_mean * 1e6
        )
        obs.timer("stratum.perst.row_seconds").record(row_mean * 10, 10)
        estimate = estimate_costs(
            stmt, db, stratum.registry, context, obs=obs
        )
        assert estimate.mode == "measured"
        assert estimate.max_cost == pytest.approx(periods * slice_mean)
