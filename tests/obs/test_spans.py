"""Span-tree shape tests: one per execution strategy.

The tracer is off by default; each test enables it, runs one statement
and compares :meth:`Span.shape` — the ``(name, [children...])`` tree
with timings and attributes stripped — against the documented pipeline
(DESIGN.md §3.3).  Attribute checks pin the load-bearing facts: which
strategy the transform span reports, how many slices the constant
periods span carries, and that per-period spans tile the context.
"""

import pytest

from repro.sqlengine.parser import parse_statement
from repro.sqlengine.values import Date
from repro.temporal import SlicingStrategy
from repro.temporal.constant_periods import compute_constant_periods
from repro.temporal.period import Period

from tests.conftest import GET_AUTHOR_NAME, make_bookstore

CONTEXT_SQL = "VALIDTIME [DATE '2010-01-01', DATE '2011-01-01'] "
CONTEXT = Period(Date.from_iso("2010-01-01").ordinal, Date.from_iso("2011-01-01").ordinal)


@pytest.fixture
def stratum():
    s = make_bookstore()
    s.register_routine(GET_AUTHOR_NAME)
    s.db.tracer.enabled = True
    return s


def run(stratum, sql, strategy=SlicingStrategy.AUTO):
    result = stratum.execute(sql, strategy=strategy)
    root = stratum.db.tracer.last_root
    assert root is not None
    return result, root


class TestSequencedMax:
    def test_select_path_shape(self, stratum):
        _, root = run(
            stratum,
            CONTEXT_SQL + "SELECT i.id, i.price FROM item i WHERE i.price > 50",
            SlicingStrategy.MAX,
        )
        assert root.shape() == (
            "statement",
            [
                ("stratum.transform", []),
                ("stratum.constant_periods", []),
                ("stratum.max.execute", []),
            ],
        )
        transform = root.find("stratum.transform")
        assert transform.attrs["strategy"] == "max"
        assert transform.attrs["dim"] == "vt"
        assert transform.attrs["cached"] is False

    def test_slices_attr_matches_constant_periods(self, stratum):
        sql = "SELECT i.id, i.price FROM item i WHERE i.price > 50"
        _, root = run(stratum, CONTEXT_SQL + sql, SlicingStrategy.MAX)
        expected = len(
            compute_constant_periods(
                stratum.db, ["item"], stratum.registry, CONTEXT
            )
        )
        cp = root.find("stratum.constant_periods")
        assert cp.attrs["slices"] == expected
        assert root.find("stratum.max.execute").attrs["slices"] == expected

    def test_function_query_has_routine_children(self, stratum):
        _, root = run(
            stratum,
            CONTEXT_SQL + "SELECT get_author_name('a1') AS name FROM item",
            SlicingStrategy.MAX,
        )
        routines = root.find("stratum.max.execute").find_all("routine")
        assert routines, "MAX function query must invoke the cloned routine"
        assert {s.attrs["name"] for s in routines} == {"max_get_author_name"}

    def test_call_loop_tiles_the_context(self, stratum):
        stratum.register_routine(
            "CREATE PROCEDURE names () LANGUAGE SQL BEGIN"
            " SELECT first_name FROM author WHERE author_id = 'a1'; END"
        )
        _, root = run(
            stratum,
            "VALIDTIME [DATE '2010-05-01', DATE '2010-07-01'] CALL names()",
            SlicingStrategy.MAX,
        )
        loop = root.find("stratum.max.loop")
        assert loop is not None
        periods = loop.find_all("stratum.max.period")
        assert len(periods) == loop.attrs["slices"] == 2
        # each period span drives exactly one routine invocation...
        for span in periods:
            assert [c.name for c in span.children] == ["routine"]
            assert span.children[0].attrs["name"] == "max_names"
        # ...and the periods tile the context in order
        bounds = [(s.attrs["begin"], s.attrs["end"]) for s in periods]
        assert bounds == [
            ("2010-05-01", "2010-06-01"),
            ("2010-06-01", "2010-07-01"),
        ]

    def test_cached_transform_is_flagged(self, stratum):
        sql = CONTEXT_SQL + "SELECT i.id FROM item i"
        run(stratum, sql, SlicingStrategy.MAX)
        _, root = run(stratum, sql, SlicingStrategy.MAX)
        assert root.find("stratum.transform").attrs["cached"] is True


class TestSequencedPerst:
    def test_algebraic_shape_skips_constant_periods(self, stratum):
        _, root = run(
            stratum,
            CONTEXT_SQL + "SELECT i.id, i.price FROM item i WHERE i.price > 50",
            SlicingStrategy.PERST,
        )
        assert root.shape() == (
            "statement",
            [("stratum.transform", []), ("stratum.perst.execute", [])],
        )
        assert root.find("stratum.transform").attrs["strategy"] == "perst"
        assert root.find("stratum.perst.execute").attrs["rows"] == len(
            stratum.db.catalog.get_table("item")
        )

    def test_function_query_invokes_ps_clone(self, stratum):
        _, root = run(
            stratum,
            CONTEXT_SQL + "SELECT get_author_name('a1') AS name FROM item",
            SlicingStrategy.PERST,
        )
        routines = root.find("stratum.perst.execute").find_all("routine")
        assert {s.attrs["name"] for s in routines} == {"ps_get_author_name"}


class TestOtherSemantics:
    def test_current_shape(self, stratum):
        _, root = run(stratum, "SELECT get_author_name('a1') AS n")
        transform = root.find("stratum.transform")
        assert transform.attrs["strategy"] == "current"
        routines = root.find_all("routine")
        assert {s.attrs["name"] for s in routines} == {"curr_get_author_name"}

    def test_nonsequenced_shape(self, stratum):
        _, root = run(
            stratum, "NONSEQUENCED VALIDTIME SELECT id, begin_time FROM item"
        )
        assert root.shape() == ("statement", [("stratum.nonsequenced", [])])
        assert root.find("stratum.nonsequenced").attrs["dim"] == "valid"

    def test_transaction_time_dimension_attr(self):
        s = make_bookstore()
        s.db.execute("CREATE TABLE audit (entity CHAR(4), val INTEGER)")
        s.db.now = Date.from_ymd(2010, 1, 1)
        s.execute("ALTER TABLE audit ADD TRANSACTIONTIME")
        s.execute("INSERT INTO audit (entity, val) VALUES ('e1', 1)")
        s.db.now = Date.from_ymd(2010, 3, 1)
        s.execute("UPDATE audit SET val = 2 WHERE entity = 'e1'")
        s.db.now = Date.from_ymd(2010, 6, 1)
        s.db.tracer.enabled = True
        _, root = run(
            s,
            "TRANSACTIONTIME [DATE '2010-01-01', DATE '2010-06-01']"
            " SELECT entity, val FROM audit",
            SlicingStrategy.MAX,
        )
        transform = root.find("stratum.transform")
        assert transform.attrs["strategy"] == "max"
        assert transform.attrs["dim"] == "tt"
        assert root.find("stratum.constant_periods") is not None


class TestDisabledTracer:
    def test_no_spans_recorded_by_default(self):
        s = make_bookstore()
        assert s.db.tracer.enabled is False
        s.execute(CONTEXT_SQL + "SELECT i.id FROM item i")
        assert s.db.tracer.last_root is None

    def test_results_identical_on_and_off(self, stratum):
        sql = CONTEXT_SQL + "SELECT get_author_name('a1') AS name FROM item"
        on = stratum.execute(sql, strategy=SlicingStrategy.MAX).coalesced()
        stratum.db.tracer.enabled = False
        off = stratum.execute(sql, strategy=SlicingStrategy.MAX).coalesced()
        assert sorted(on) == sorted(off)


class TestMetrics:
    def test_slice_counter_matches_constant_periods(self, stratum):
        obs = stratum.db.obs
        before = obs.value("stratum.slices")
        run(
            stratum,
            CONTEXT_SQL + "SELECT i.id FROM item i",
            SlicingStrategy.MAX,
        )
        expected = len(
            compute_constant_periods(
                stratum.db, ["item"], stratum.registry, CONTEXT
            )
        )
        assert obs.value("stratum.slices") - before == expected

    def test_max_select_timer_counts_slices(self, stratum):
        _, root = run(
            stratum,
            CONTEXT_SQL + "SELECT get_author_name('a1') AS name FROM item",
            SlicingStrategy.MAX,
        )
        slice_timer = stratum.db.obs.timer("stratum.max.slice_seconds")
        assert slice_timer.count == root.find("stratum.max.execute").attrs["slices"]

    def test_max_loop_timers_count_slices_and_invocations(self, stratum):
        stratum.register_routine(
            "CREATE PROCEDURE names () LANGUAGE SQL BEGIN"
            " SELECT first_name FROM author WHERE author_id = 'a1'; END"
        )
        obs = stratum.db.obs
        stats = stratum.db.stats
        calls_before = stats.total_routine_calls
        _, root = run(
            stratum,
            "VALIDTIME [DATE '2010-05-01', DATE '2010-07-01'] CALL names()",
            SlicingStrategy.MAX,
        )
        assert obs.timer("stratum.max.slice_seconds").count == 2
        invocation_timer = obs.timer("stratum.max.invocation_seconds")
        assert invocation_timer.count == (
            stats.total_routine_calls - calls_before
        ) == len(root.find_all("routine"))

    def test_perst_row_timer_counts_data_rows(self, stratum):
        obs = stratum.db.obs
        _, root = run(
            stratum,
            CONTEXT_SQL + "SELECT i.id FROM item i",
            SlicingStrategy.PERST,
        )
        timer = obs.timer("stratum.perst.row_seconds")
        assert timer.count == root.find("stratum.perst.execute").attrs["rows"]

    def test_rows_written_aliases_the_registry(self, stratum):
        stats = stratum.db.stats
        obs = stratum.db.obs
        before = stats.rows_written
        stratum.db.execute(
            "INSERT INTO item VALUES"
            " ('i9', 'Book Nine', 5.0, DATE '2010-05-01', DATE '9999-12-31')"
        )
        assert stats.rows_written == before + 1
        assert stats.rows_written == obs.sum_prefix("engine.rows_written.")
        assert stats.snapshot()["rows_written_by_source"]["insert"] >= 1

    def test_undo_depth_gauge_high_water(self, stratum):
        # the gauge samples the log depth when a statement mark is taken,
        # so the *second* statement inside the transaction observes the
        # entries the first one left behind
        stratum.db.execute("BEGIN")
        stratum.db.execute(
            "INSERT INTO item VALUES"
            " ('i8', 'Book Eight', 6.0, DATE '2010-05-01', DATE '9999-12-31')"
        )
        stratum.db.execute(
            "INSERT INTO item VALUES"
            " ('i9', 'Book Nine', 7.0, DATE '2010-05-01', DATE '9999-12-31')"
        )
        stratum.db.execute("ROLLBACK")
        assert stratum.db.obs.gauges.get("txn.undo_depth_high_water", 0) >= 1
