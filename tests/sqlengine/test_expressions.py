"""Expression-evaluation tests, driven through FROM-less SELECTs."""

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import CatalogError, DivisionByZeroError, TypeError_
from repro.sqlengine.values import Date, Null


@pytest.fixture
def db():
    return Database()


def val(db, expr):
    return db.query(f"SELECT {expr}").scalar()


class TestArithmetic:
    def test_basics(self, db):
        assert val(db, "2 + 3 * 4") == 14
        assert val(db, "(2 + 3) * 4") == 20
        assert val(db, "10 - 4 - 3") == 3
        assert val(db, "2.5 * 2") == 5.0

    def test_integer_division_truncates_toward_zero(self, db):
        assert val(db, "7 / 2") == 3
        assert val(db, "-7 / 2") == -3

    def test_float_division(self, db):
        assert val(db, "7.0 / 2") == 3.5

    def test_division_by_zero_raises(self, db):
        with pytest.raises(DivisionByZeroError):
            val(db, "1 / 0")

    def test_unary_minus(self, db):
        assert val(db, "-(2 + 3)") == -5

    def test_null_propagates_through_arithmetic(self, db):
        assert val(db, "1 + NULL") is Null
        assert val(db, "NULL * 2") is Null

    def test_negate_string_raises(self, db):
        with pytest.raises(TypeError_):
            val(db, "-'abc'")


class TestStringOps:
    def test_concat(self, db):
        assert val(db, "'foo' || 'bar'") == "foobar"

    def test_concat_number(self, db):
        assert val(db, "'n=' || 5") == "n=5"

    def test_concat_null(self, db):
        assert val(db, "'x' || NULL") is Null

    def test_like(self, db):
        assert val(db, "CASE WHEN 'hello' LIKE 'h%o' THEN 1 ELSE 0 END") == 1
        assert val(db, "CASE WHEN 'hello' LIKE 'h_llo' THEN 1 ELSE 0 END") == 1
        assert val(db, "CASE WHEN 'hello' LIKE 'h_o' THEN 1 ELSE 0 END") == 0

    def test_like_escapes_regex_chars(self, db):
        assert val(db, "CASE WHEN 'a.b' LIKE 'a.b' THEN 1 ELSE 0 END") == 1
        assert val(db, "CASE WHEN 'axb' LIKE 'a.b' THEN 1 ELSE 0 END") == 0


class TestPredicates:
    def test_comparisons(self, db):
        assert val(db, "CASE WHEN 1 < 2 THEN 'y' ELSE 'n' END") == "y"
        assert val(db, "CASE WHEN 'a' >= 'b' THEN 'y' ELSE 'n' END") == "n"

    def test_between(self, db):
        assert val(db, "CASE WHEN 5 BETWEEN 1 AND 10 THEN 1 ELSE 0 END") == 1
        assert val(db, "CASE WHEN 0 BETWEEN 1 AND 10 THEN 1 ELSE 0 END") == 0

    def test_not_between(self, db):
        assert val(db, "CASE WHEN 0 NOT BETWEEN 1 AND 10 THEN 1 ELSE 0 END") == 1

    def test_in_list(self, db):
        assert val(db, "CASE WHEN 2 IN (1, 2, 3) THEN 1 ELSE 0 END") == 1
        assert val(db, "CASE WHEN 9 IN (1, 2, 3) THEN 1 ELSE 0 END") == 0

    def test_in_with_null_candidate_is_unknown(self, db):
        # 9 IN (1, NULL) is UNKNOWN, so neither branch on truth
        assert val(db, "CASE WHEN 9 IN (1, NULL) THEN 1 ELSE 0 END") == 0
        assert val(db, "CASE WHEN NOT 9 IN (1, NULL) THEN 1 ELSE 0 END") == 0

    def test_is_null(self, db):
        assert val(db, "CASE WHEN NULL IS NULL THEN 1 ELSE 0 END") == 1
        assert val(db, "CASE WHEN 1 IS NOT NULL THEN 1 ELSE 0 END") == 1


class TestCase:
    def test_searched_case_first_match_wins(self, db):
        assert val(db, "CASE WHEN 1 = 1 THEN 'a' WHEN 2 = 2 THEN 'b' END") == "a"

    def test_simple_case(self, db):
        assert val(db, "CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END") == "two"

    def test_case_no_match_no_else_is_null(self, db):
        assert val(db, "CASE WHEN 1 = 2 THEN 'x' END") is Null


class TestBuiltins:
    def test_upper_lower(self, db):
        assert val(db, "UPPER('abc')") == "ABC"
        assert val(db, "LOWER('ABC')") == "abc"

    def test_length(self, db):
        assert val(db, "LENGTH('hello')") == 5

    def test_substring(self, db):
        assert val(db, "SUBSTRING('hello', 2, 3)") == "ell"
        assert val(db, "SUBSTRING('hello', 3)") == "llo"

    def test_trim(self, db):
        assert val(db, "TRIM('  x  ')") == "x"

    def test_abs_mod(self, db):
        assert val(db, "ABS(-4)") == 4
        assert val(db, "MOD(7, 3)") == 1

    def test_mod_by_zero_raises(self, db):
        with pytest.raises(DivisionByZeroError):
            val(db, "MOD(1, 0)")

    def test_coalesce(self, db):
        assert val(db, "COALESCE(NULL, NULL, 3)") == 3
        assert val(db, "COALESCE(NULL, NULL)") is Null

    def test_nullif(self, db):
        assert val(db, "NULLIF(1, 1)") is Null
        assert val(db, "NULLIF(1, 2)") == 1

    def test_first_last_instance(self, db):
        """Paper Fig. 4: the earlier / later of two times."""
        early = "DATE '2010-01-01'"
        late = "DATE '2010-06-01'"
        assert val(db, f"FIRST_INSTANCE({early}, {late})") == Date.from_iso("2010-01-01")
        assert val(db, f"LAST_INSTANCE({early}, {late})") == Date.from_iso("2010-06-01")

    def test_first_last_instance_null(self, db):
        assert val(db, "FIRST_INSTANCE(NULL, DATE '2010-01-01')") is Null

    def test_year_days_date(self, db):
        assert val(db, "YEAR(DATE '2010-06-01')") == 2010
        assert val(db, "DATE(DAYS(DATE '2010-06-01'))") == Date.from_iso("2010-06-01")

    def test_current_date_is_settable(self, db):
        db.now = Date.from_ymd(2010, 7, 4)
        assert val(db, "CURRENT_DATE") == Date.from_ymd(2010, 7, 4)

    def test_cast(self, db):
        assert val(db, "CAST('42' AS INTEGER)") == 42
        assert val(db, "CAST(42 AS CHAR(5))") == "42"

    def test_unknown_function_raises(self, db):
        with pytest.raises(CatalogError):
            val(db, "no_such_function(1)")
