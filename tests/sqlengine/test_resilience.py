"""The resilience layer: watchdog, governor, retry, context managers.

DESIGN.md §3.7.  The contract under test: a statement can always be
interrupted (typed ``QueryCancelled``, SQLSTATE 57014) or budgeted
(typed ``ResourceBudgetExceeded``, SQLSTATE 53000), both unwinding
through the ordinary rollback machinery and leaving the engine usable;
transient durability faults are retried with backoff and surface as a
typed ``DurabilityError`` only after exhaustion.
"""

from __future__ import annotations

import errno

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import (
    DurabilityError,
    FaultInjected,
    QueryCancelled,
    ResourceBudgetExceeded,
    SignalError,
)
from repro.sqlengine.resilience import retry_durable
from repro.sqlengine.txn import FaultPlan
from repro.temporal import TemporalStratum

from tests.faultinject import assert_snapshot_equal, snapshot_db


@pytest.fixture
def stocked(db: Database) -> Database:
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
    db.execute(
        "INSERT INTO t VALUES " + ", ".join(f"({i}, {i % 7})" for i in range(60))
    )
    return db


def _transient(site: str, target: str, hits: int) -> OSError:
    return OSError(errno.EINTR, f"transient at {site} #{hits}")


# ---------------------------------------------------------------------------
# watchdog
# ---------------------------------------------------------------------------


def test_cancel_trigger_raises_typed_57014(stocked: Database):
    stocked.resilience.cancel_at_check = 1
    with pytest.raises(QueryCancelled) as excinfo:
        stocked.execute("SELECT a FROM t WHERE b = 3")
    assert excinfo.value.sqlstate == "57014"
    assert isinstance(excinfo.value, SignalError)


def test_cancellation_leaves_undo_log_clean_and_db_usable(stocked: Database):
    stocked.execute(
        """
        CREATE PROCEDURE churn ()
        LANGUAGE SQL
        BEGIN
          DECLARE i INTEGER;
          SET i = 0;
          WHILE i < 100 DO
            INSERT INTO t VALUES (1000 + i, 0);
            SET i = i + 1;
          END WHILE;
        END
        """
    )
    before = snapshot_db(stocked)
    # fire mid-loop, after real mutations have been applied and logged
    stocked.resilience.cancel_at_check = 40
    with pytest.raises(QueryCancelled):
        stocked.execute("CALL churn()")
    assert_snapshot_equal(stocked, before)
    assert stocked.txn.log == []
    assert stocked.txn.marks == []
    # the trigger is one-shot: the next statement runs normally
    stocked.execute("CALL churn()")
    assert len(stocked.table("t")) == 160


def test_async_cancel_fires_at_next_check(stocked: Database):
    stocked.resilience.cancel()
    with pytest.raises(QueryCancelled):
        stocked.execute("SELECT a FROM t")
    # the request was consumed
    assert len(stocked.execute("SELECT a FROM t").rows) == 60


def test_statement_timeout_cancels_and_clears(stocked: Database):
    stocked.resilience.statement_timeout = 0.0
    with pytest.raises(QueryCancelled) as excinfo:
        stocked.execute("SELECT a FROM t WHERE b = 1")
    assert "deadline" in str(excinfo.value)
    stocked.resilience.statement_timeout = None
    assert len(stocked.execute("SELECT a FROM t").rows) == 60


def test_watchdog_counts_cancellations(stocked: Database):
    stocked.resilience.cancel_at_check = 1
    with pytest.raises(QueryCancelled):
        stocked.execute("SELECT a FROM t")
    assert stocked.obs.value("resilience.cancellations") == 1


# ---------------------------------------------------------------------------
# governor: hard budgets
# ---------------------------------------------------------------------------


def test_row_scan_budget_trips_with_typed_53000(stocked: Database):
    stocked.resilience.max_rows_scanned = 70
    with pytest.raises(ResourceBudgetExceeded) as excinfo:
        # nested loop: one bind per outer row, so checks interleave scans
        stocked.execute("SELECT x.a FROM t x, t y WHERE x.b = y.b")
    assert excinfo.value.sqlstate == "53000"
    assert excinfo.value.budget == "rows_scanned"
    assert excinfo.value.used > 70


def test_row_scan_budget_is_per_statement(stocked: Database):
    stocked.resilience.max_rows_scanned = 100
    # each statement scans 60 rows; a cumulative counter would trip on
    # the second
    assert len(stocked.execute("SELECT a FROM t").rows) == 60
    assert len(stocked.execute("SELECT a FROM t").rows) == 60


def test_undo_depth_budget_trips_inside_routine(db: Database):
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute(
        """
        CREATE PROCEDURE filler ()
        LANGUAGE SQL
        BEGIN
          DECLARE i INTEGER;
          SET i = 0;
          WHILE i < 200 DO
            INSERT INTO t VALUES (i);
            SET i = i + 1;
          END WHILE;
        END
        """
    )
    db.resilience.max_undo_depth = 50
    before = snapshot_db(db)
    with pytest.raises(ResourceBudgetExceeded) as excinfo:
        db.execute("CALL filler()")
    assert excinfo.value.budget == "undo_depth"
    # unhandled budget stop cascades to full routine atomicity
    assert_snapshot_equal(db, before)
    db.resilience.max_undo_depth = None
    db.execute("CALL filler()")
    assert len(db.table("t")) == 200


# ---------------------------------------------------------------------------
# governor: graceful degradation
# ---------------------------------------------------------------------------


def test_resident_budget_degrades_vectorized_scan_same_rows(stocked: Database):
    # inequality conjuncts: no hash probe, so the planner wants the
    # vectorized batch path
    baseline = stocked.execute("SELECT a FROM t WHERE a > 10 AND b < 5")
    # stale the store built by the baseline run (updates bump the table
    # version without mirroring into the columnar image), then forbid
    # a rebuild
    stocked.execute("UPDATE t SET a = a")
    expected = sorted(r[0] for r in baseline.rows)
    stocked.resilience.max_resident_bytes = 1
    degraded = stocked.execute("SELECT a FROM t WHERE a > 10 AND b < 5")
    assert sorted(r[0] for r in degraded.rows) == expected
    assert stocked.obs.value("resilience.degradations.vectorized") >= 1


def test_degradation_counts_visible_in_explain_analyze(stocked: Database):
    stocked.execute("UPDATE t SET a = a")
    stocked.resilience.max_resident_bytes = 1
    result = stocked.execute("EXPLAIN ANALYZE SELECT a FROM t WHERE a > 10")
    text = result.text()
    assert "governor degradations" in text
    assert "resilience: armed" in text


def test_current_store_is_always_allowed(stocked: Database):
    # build the store while unbudgeted ...
    stocked.execute("SELECT a FROM t WHERE a > 10")
    before = stocked.obs.value("resilience.degradations.vectorized")
    # ... then a budget smaller than the table: no rebuild needed, so no
    # degradation either
    stocked.resilience.max_resident_bytes = 1
    stocked.execute("SELECT a FROM t WHERE a > 10")
    assert stocked.obs.value("resilience.degradations.vectorized") == before


# ---------------------------------------------------------------------------
# transient-fault retry and DurabilityError
# ---------------------------------------------------------------------------


def test_transient_wal_write_fault_is_retried(tmp_path):
    db = Database.open(tmp_path / "db")
    db.execute("CREATE TABLE t (a INTEGER)")
    db.txn.fault_plan = FaultPlan("wal.write", exc_factory=_transient)
    db.execute("INSERT INTO t VALUES (1)")  # commit absorbs the blip
    assert db.obs.value("wal.retries") == 1
    db.txn.fault_plan = None
    db.close()
    reopened = Database.open(tmp_path / "db")
    assert len(reopened.table("t")) == 1
    reopened.close()


def test_transient_fsync_fault_is_retried(tmp_path):
    db = Database.open(tmp_path / "db")
    db.execute("CREATE TABLE t (a INTEGER)")
    db.txn.fault_plan = FaultPlan("wal.fsync", exc_factory=_transient)
    db.execute("INSERT INTO t VALUES (1)")
    assert db.obs.value("wal.retries") >= 1
    db.txn.fault_plan = None
    db.close()


def test_persistent_transient_fault_exhausts_to_durability_error(tmp_path):
    db = Database.open(tmp_path / "db")
    db.execute("CREATE TABLE t (a INTEGER)")
    # re-fires on every attempt: backoff cannot absorb it
    db.txn.fault_plan = FaultPlan(
        "wal.fsync", every=1, times=None, exc_factory=_transient
    )
    with pytest.raises(DurabilityError) as excinfo:
        db.execute("INSERT INTO t VALUES (1)")
    assert excinfo.value.operation == "wal.fsync"
    assert "wal.log" in excinfo.value.path
    assert excinfo.value.attempts > 1
    db.txn.fault_plan = None
    db.close(checkpoint=False)


def test_non_transient_oserror_wraps_without_retry(tmp_path):
    db = Database.open(tmp_path / "db")
    db.execute("CREATE TABLE t (a INTEGER)")
    db.txn.fault_plan = FaultPlan(
        "wal.write",
        exc_factory=lambda site, target, hits: OSError(errno.EACCES, "denied"),
    )
    with pytest.raises(DurabilityError) as excinfo:
        db.execute("INSERT INTO t VALUES (1)")
    assert excinfo.value.attempts == 1
    assert db.obs.value("wal.retries") == 0
    db.txn.fault_plan = None
    db.close(checkpoint=False)


def test_checkpoint_rename_transient_fault_is_retried(tmp_path):
    db = Database.open(tmp_path / "db")
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (1)")
    db.txn.fault_plan = FaultPlan("checkpoint.rename", exc_factory=_transient)
    db.checkpoint()
    assert db.obs.value("wal.retries") == 1
    db.txn.fault_plan = None
    db.close()
    reopened = Database.open(tmp_path / "db")
    assert len(reopened.table("t")) == 1
    reopened.close()


def test_injected_crash_is_never_retried(tmp_path):
    db = Database.open(tmp_path / "db")
    db.execute("CREATE TABLE t (a INTEGER)")
    plan = FaultPlan("wal.fsync")
    db.txn.fault_plan = plan
    with pytest.raises(FaultInjected):
        db.execute("INSERT INTO t VALUES (1)")
    assert plan.fires == 1  # one firing — retry did not re-drive it
    assert db.obs.value("wal.retries") == 0
    db.txn.fault_plan = None
    db.close(checkpoint=False)


def test_retry_durable_passes_result_through():
    assert retry_durable("op", "p", lambda: 41 + 1) == 42


# ---------------------------------------------------------------------------
# context managers and idempotent close
# ---------------------------------------------------------------------------


def test_database_context_manager_closes(tmp_path):
    with Database.open(tmp_path / "db") as db:
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (7)")
    assert db.durability is None
    with Database.open(tmp_path / "db") as db:
        assert [r[0] for r in db.table("t").rows] == [7]


def test_stratum_context_manager_closes(tmp_path):
    with TemporalStratum.open(tmp_path / "db") as stratum:
        stratum.execute("CREATE TABLE t (a INTEGER)")
    assert stratum.db.durability is None


def test_close_is_idempotent_and_flushes_once(tmp_path):
    db = Database.open(tmp_path / "db")
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (1)")
    manager = db.durability
    db.close()
    checkpoints = db.obs.value("checkpoint.writes")
    commits = db.obs.value("wal.commits")
    # second (and third) close: no second flush, no second checkpoint
    db.close()
    manager.close()
    assert db.obs.value("checkpoint.writes") == checkpoints
    assert db.obs.value("wal.commits") == commits


def test_context_manager_skips_checkpoint_on_error(tmp_path):
    with pytest.raises(RuntimeError):
        with Database.open(tmp_path / "db") as db:
            db.execute("CREATE TABLE t (a INTEGER)")
            raise RuntimeError("boom")
    assert db.durability is None
    # no snapshot was written on the error path; the WAL alone recovers
    with Database.open(tmp_path / "db") as db:
        assert db.catalog.has_table("t")


# ---------------------------------------------------------------------------
# disarmed state
# ---------------------------------------------------------------------------


def test_disable_returns_to_free_state(stocked: Database):
    res = stocked.resilience
    res.configure(
        statement_timeout=5.0, max_rows_scanned=10**9, max_undo_depth=10**9
    )
    assert res.armed
    res.disable()
    assert not res.armed
    assert len(stocked.execute("SELECT a FROM t").rows) == 60


def test_explain_analyze_silent_when_disarmed(stocked: Database):
    text = stocked.execute("EXPLAIN ANALYZE SELECT a FROM t").text()
    assert "resilience" not in text
    assert "governor" not in text
