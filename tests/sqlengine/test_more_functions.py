"""Tests for the extended builtin set and RIGHT JOIN."""

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import ExecutionError
from repro.sqlengine.values import Date, Null


@pytest.fixture
def db():
    return Database()


def val(db, expr):
    return db.query(f"SELECT {expr}").scalar()


class TestNumericBuiltins:
    def test_round(self, db):
        assert val(db, "ROUND(2.567, 2)") == 2.57
        assert val(db, "ROUND(2.4)") == 2
        assert isinstance(val(db, "ROUND(2.6)"), int)

    def test_floor_ceiling(self, db):
        assert val(db, "FLOOR(2.9)") == 2
        assert val(db, "CEILING(2.1)") == 3
        assert val(db, "CEIL(-2.1)") == -2

    def test_sign(self, db):
        assert val(db, "SIGN(-7)") == -1
        assert val(db, "SIGN(0)") == 0
        assert val(db, "SIGN(3.5)") == 1

    def test_power_sqrt(self, db):
        assert val(db, "POWER(2, 10)") == 1024
        assert val(db, "SQRT(16)") == 4.0

    def test_sqrt_negative_raises(self, db):
        with pytest.raises(ExecutionError):
            val(db, "SQRT(-1)")

    def test_null_propagation(self, db):
        for expr in ("ROUND(NULL)", "FLOOR(NULL)", "SIGN(NULL)", "SQRT(NULL)"):
            assert val(db, expr) is Null


class TestStringBuiltins:
    def test_position(self, db):
        assert val(db, "POSITION('lo', 'hello')") == 4
        assert val(db, "POSITION('xx', 'hello')") == 0

    def test_replace(self, db):
        assert val(db, "REPLACE('banana', 'na', 'NA')") == "baNANA"

    def test_left_right(self, db):
        assert val(db, "LEFT('hello', 2)") == "he"
        assert val(db, "RIGHT('hello', 3)") == "llo"
        assert val(db, "LEFT('hello', 0)") == ""
        assert val(db, "RIGHT('hello', 0)") == ""

    def test_left_in_where_clause(self, db):
        db.execute("CREATE TABLE t (s CHAR(10))")
        db.execute("INSERT INTO t VALUES ('apple'), ('apricot'), ('banana')")
        result = db.query("SELECT s FROM t WHERE LEFT(s, 2) = 'ap' ORDER BY s")
        assert [r[0] for r in result.rows] == ["apple", "apricot"]


class TestDateBuiltins:
    def test_month_day(self, db):
        assert val(db, "MONTH(DATE '2010-06-15')") == 6
        assert val(db, "DAY(DATE '2010-06-15')") == 15

    def test_year_month_day_null(self, db):
        assert val(db, "MONTH(NULL)") is Null


class TestRightJoin:
    @pytest.fixture
    def db(self):
        db = Database()
        db.execute("CREATE TABLE emp (name CHAR(10), dept CHAR(10))")
        db.execute("CREATE TABLE dept (code CHAR(10), city CHAR(10))")
        db.execute("INSERT INTO emp VALUES ('ann', 'eng')")
        db.execute("INSERT INTO dept VALUES ('eng', 'tucson')")
        db.execute("INSERT INTO dept VALUES ('hr', 'boston')")
        return db

    def test_right_join_null_extends_left(self, db):
        result = db.query(
            "SELECT e.name, d.code FROM emp e RIGHT JOIN dept d"
            " ON e.dept = d.code ORDER BY d.code"
        )
        assert result.rows == [["ann", "eng"], [Null, "hr"]]

    def test_right_outer_join_spelling(self, db):
        result = db.query(
            "SELECT d.code FROM emp e RIGHT OUTER JOIN dept d"
            " ON e.dept = d.code"
        )
        assert len(result) == 2

    def test_right_join_equals_swapped_left_join(self, db):
        right = db.query(
            "SELECT e.name, d.code FROM emp e RIGHT JOIN dept d"
            " ON e.dept = d.code ORDER BY d.code"
        )
        left = db.query(
            "SELECT e.name, d.code FROM dept d LEFT JOIN emp e"
            " ON e.dept = d.code ORDER BY d.code"
        )
        assert right.rows == left.rows

    def test_right_join_renders(self, db):
        from repro.sqlengine.parser import parse_statement

        sql = "SELECT 1 FROM a RIGHT JOIN b ON a.x = b.x"
        assert "RIGHT JOIN" in parse_statement(sql).to_sql()


class TestTemporalRightJoin:
    def test_current_semantics_preserves_null_extension(self):
        from tests.conftest import make_bookstore

        stratum = make_bookstore()
        stratum.db.now = Date.from_ymd(2010, 4, 1)
        stratum.db.execute("DELETE FROM item_author WHERE item_id = 'i2'")
        result = stratum.execute(
            "SELECT ia.author_id, i.title FROM item_author ia"
            " RIGHT JOIN item i ON i.id = ia.item_id ORDER BY i.title"
        )
        assert result.rows == [["a1", "Book One"], [Null, "Book Two"]]
