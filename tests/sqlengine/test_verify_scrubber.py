"""The durable-state scrubber: ``verify_store`` / ``repro verify``.

An offline walk of the WAL CRC chain and snapshot header that reports
the first torn frame instead of silently truncating it at the next
open, and can quarantine the bad suffix to a sidecar for forensics.
"""

from __future__ import annotations

import shutil
import struct

import pytest

from repro.cli import run_verify
from repro.sqlengine import Database
from repro.sqlengine.resilience import verify_store
from repro.sqlengine.wal import SNAPSHOT_FILE, WAL_FILE


@pytest.fixture
def store(tmp_path):
    """A durable store with a snapshot and a committed WAL tail."""
    path = tmp_path / "db"
    db = Database.open(path)
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (1)")
    db.checkpoint()
    db.execute("INSERT INTO t VALUES (2)")
    db.execute("INSERT INTO t VALUES (3)")
    db.close(checkpoint=False)  # leave the WAL tail in place
    return path


def wal_path(store):
    return store / WAL_FILE


def test_clean_store_verifies_ok(store):
    report = verify_store(store)
    assert report.ok
    assert report.snapshot_present and report.snapshot_ok
    assert report.wal_present
    assert report.committed_transactions == 2
    assert report.corrupt_offset is None
    assert report.render().endswith("result: OK")


def test_online_verify_through_database(tmp_path):
    db = Database.open(tmp_path / "db")
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (1)")
    report = db.verify()
    assert report.ok
    assert report.committed_transactions >= 1
    db.close()


def test_truncated_frame_reports_offset(store):
    data = wal_path(store).read_bytes()
    wal_path(store).write_bytes(data[:-3])  # tear the final frame
    report = verify_store(store)
    assert not report.ok
    assert report.corrupt_offset is not None
    assert report.corrupt_offset < len(data) - 3
    text = report.render()
    assert "torn or corrupt frame" in text
    assert text.endswith("result: CORRUPT")


def test_flipped_byte_reports_first_bad_frame(store):
    data = bytearray(wal_path(store).read_bytes())
    # corrupt one payload byte in the middle of the file: the CRC of
    # that frame no longer matches, everything before it stays intact
    target = len(data) // 2
    data[target] ^= 0xFF
    wal_path(store).write_bytes(bytes(data))
    report = verify_store(store)
    assert not report.ok
    assert report.corrupt_offset is not None
    assert report.corrupt_offset <= target
    assert report.frames >= 1  # the prefix before the flip still reads


def test_quarantine_moves_suffix_and_cleans_store(store):
    data = wal_path(store).read_bytes()
    torn = data[:-3]
    wal_path(store).write_bytes(torn)
    report = verify_store(store, quarantine=True)
    assert report.ok  # cleaned counts as clean
    assert report.quarantined_to is not None
    sidecar_bytes = (store / report.quarantined_to.rsplit("/", 1)[-1]).read_bytes()
    assert sidecar_bytes == torn[report.corrupt_offset :]
    assert wal_path(store).read_bytes() == torn[: report.corrupt_offset]
    # the truncated store verifies clean and reopens with the
    # committed prefix
    assert verify_store(store).ok
    db = Database.open(store)
    values = sorted(r[0] for r in db.table("t").rows)
    assert values[0] == 1 and set(values) <= {1, 2, 3}
    db.close()


def test_corrupt_snapshot_is_reported(store):
    snapshot = store / SNAPSHOT_FILE
    content = snapshot.read_bytes()
    snapshot.write_bytes(content[:-10])
    report = verify_store(store)
    assert not report.ok
    assert not report.snapshot_ok
    assert "result: CORRUPT" in report.render()


def test_stale_generation_wal_noted_not_failed(store, tmp_path):
    # a crash between checkpoint rename and WAL reset leaves the old
    # log beside the new snapshot; recovery ignores it, verify notes it
    old_wal = tmp_path / "old.wal"
    shutil.copy(wal_path(store), old_wal)
    db = Database.open(store)
    db.execute("INSERT INTO t VALUES (4)")
    db.checkpoint()
    db.close(checkpoint=False)
    shutil.copy(old_wal, wal_path(store))
    report = verify_store(store)
    assert report.stale_wal
    assert report.ok
    assert "stale log" in report.render()


def test_mismatched_ahead_generation_fails(store):
    # a WAL from a *later* generation than the snapshot cannot belong
    # to it: flag loudly instead of replaying foreign history
    data = wal_path(store).read_bytes()
    (length,) = struct.unpack_from("<I", data, 0)
    import json
    import zlib

    header = json.dumps(["walhdr", 999]).encode()
    frame = struct.pack("<II", len(header), zlib.crc32(header)) + header
    wal_path(store).write_bytes(frame + data[8 + length :])
    report = verify_store(store)
    assert not report.ok
    assert any("ahead of the snapshot" in p for p in report.problems)


def test_ahead_generation_snapshot_recovers_to_snapshot_state(store, tmp_path):
    """A snapshot from a *later* generation than the WAL beside it wins:
    verify notes the stale log, and recovery restores exactly the
    snapshot's state instead of replaying the older generation's tail."""
    old_wal = tmp_path / "old.wal"
    shutil.copy(wal_path(store), old_wal)
    db = Database.open(store)
    db.execute("INSERT INTO t VALUES (40)")
    db.checkpoint()  # snapshot generation moves ahead of old_wal's
    expected = sorted(r[0] for r in db.table("t").rows)
    db.close(checkpoint=False)
    shutil.copy(old_wal, wal_path(store))
    report = verify_store(store)
    assert report.ok and report.stale_wal
    db = Database.open(store)
    try:
        assert sorted(r[0] for r in db.table("t").rows) == expected
    finally:
        db.close(checkpoint=False)
    # recovery did not resurrect the stale log as live history
    assert verify_store(store).ok


def test_quarantine_sidecar_survives_clean_recovery(store):
    """The forensic sidecar is evidence: recovery, checkpoints, and a
    re-verify of the healed store must all leave it untouched."""
    data = wal_path(store).read_bytes()
    wal_path(store).write_bytes(data[:-3])
    report = verify_store(store, quarantine=True)
    assert report.ok and report.quarantined_to is not None
    sidecar = store / report.quarantined_to.rsplit("/", 1)[-1]
    evidence = sidecar.read_bytes()
    db = Database.open(store)  # clean recovery over the truncated WAL
    db.execute("INSERT INTO t VALUES (99)")
    db.checkpoint()
    db.close()
    assert sidecar.exists()
    assert sidecar.read_bytes() == evidence
    followup = verify_store(store)
    assert followup.ok
    # and a second quarantine pass has nothing to move
    assert verify_store(store, quarantine=True).quarantined_to is None


def test_empty_wal_with_garbage_has_no_intact_frames(store):
    wal_path(store).write_bytes(b"\x00garbage\xff" * 4)
    report = verify_store(store)
    assert not report.ok
    assert report.frames == 0


def test_fresh_directory_verifies_ok(tmp_path):
    report = verify_store(tmp_path / "nothing-here")
    assert report.ok
    assert not report.snapshot_present and not report.wal_present


def test_cli_exit_codes(store, capsys):
    assert run_verify(["--db", str(store)]) == 0
    out = capsys.readouterr().out
    assert "result: OK" in out

    data = wal_path(store).read_bytes()
    wal_path(store).write_bytes(data[:-3])
    assert run_verify(["--db", str(store)]) == 1
    assert "result: CORRUPT" in capsys.readouterr().out

    # quarantine flips it back to success and leaves the sidecar behind
    assert run_verify(["--db", str(store), "--quarantine"]) == 0
    out = capsys.readouterr().out
    assert "quarantined" in out
    assert any(p.name.startswith(f"{WAL_FILE}.quarantine-")
               for p in store.iterdir())
