"""Explicit transactions, savepoints, and statement-level atomicity."""

from __future__ import annotations

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import ExecutionError, SqlError, TypeError_
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.storage import Column, Table
from repro.sqlengine.types import SqlType

from tests.faultinject import assert_snapshot_equal, snapshot_db


@pytest.fixture
def db_t(db: Database) -> Database:
    db.execute("CREATE TABLE t (a INTEGER, b CHAR(10))")
    db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
    return db


def rows(db: Database, name: str = "t"):
    return db.table(name).rows


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "sql,action,name",
    [
        ("BEGIN", "BEGIN", None),
        ("BEGIN WORK", "BEGIN", None),
        ("BEGIN TRANSACTION", "BEGIN", None),
        ("START TRANSACTION", "BEGIN", None),
        ("COMMIT", "COMMIT", None),
        ("COMMIT WORK", "COMMIT", None),
        ("ROLLBACK", "ROLLBACK", None),
        ("ROLLBACK WORK", "ROLLBACK", None),
        ("SAVEPOINT sp1", "SAVEPOINT", "sp1"),
        ("RELEASE SAVEPOINT sp1", "RELEASE SAVEPOINT", "sp1"),
        ("ROLLBACK TO sp1", "ROLLBACK TO SAVEPOINT", "sp1"),
        ("ROLLBACK TO SAVEPOINT sp1", "ROLLBACK TO SAVEPOINT", "sp1"),
    ],
)
def test_parse_transaction_statements(sql, action, name):
    stmt = parse_statement(sql)
    assert stmt.action == action
    assert stmt.name == name
    # round-trips through the renderer
    again = parse_statement(stmt.to_sql())
    assert again.action == action and again.name == name


def test_begin_still_opens_a_compound_in_routines(db: Database):
    # BEGIN followed by anything but ; / WORK / TRANSACTION is PSM
    db.execute(
        "CREATE FUNCTION f () RETURNS INTEGER LANGUAGE SQL"
        " BEGIN RETURN 41 + 1; END"
    )
    assert db.query("SELECT f()").rows == [[42]]


def test_to_and_work_remain_usable_as_identifiers(db: Database):
    db.execute("CREATE TABLE jobs (work INTEGER)")
    db.execute("INSERT INTO jobs VALUES (7)")
    assert db.query("SELECT work FROM jobs").rows == [[7]]


# ---------------------------------------------------------------------------
# explicit transactions
# ---------------------------------------------------------------------------


def test_commit_keeps_effects(db_t: Database):
    db_t.execute("BEGIN")
    db_t.execute("INSERT INTO t VALUES (3, 'three')")
    db_t.execute("COMMIT")
    assert [1, 2, 3] == sorted(row[0] for row in rows(db_t))
    assert not db_t.txn.explicit and db_t.txn.log == []


def test_rollback_restores_rows_and_versions(db_t: Database):
    table = db_t.table("t")
    before = snapshot_db(db_t)
    db_t.execute("BEGIN")
    db_t.execute("INSERT INTO t VALUES (3, 'three')")
    db_t.execute("UPDATE t SET b = 'x' WHERE a = 1")
    db_t.execute("DELETE FROM t WHERE a = 2")
    assert sorted(row[0] for row in table.rows) == [1, 3]
    db_t.execute("ROLLBACK")
    assert_snapshot_equal(db_t, before)
    assert db_t.stats.rollbacks == 1


def test_rollback_restores_ddl(db_t: Database):
    before = snapshot_db(db_t)
    db_t.execute("BEGIN")
    db_t.execute("CREATE TABLE extra (x INTEGER)")
    db_t.execute("INSERT INTO extra VALUES (1)")
    db_t.execute("DROP TABLE t")
    db_t.execute("CREATE VIEW v AS SELECT x FROM extra")
    db_t.execute(
        "CREATE FUNCTION g () RETURNS INTEGER LANGUAGE SQL"
        " BEGIN RETURN 1; END"
    )
    db_t.execute("ROLLBACK")
    assert_snapshot_equal(db_t, before)
    # the dropped table is back with its rows intact
    assert sorted(row[0] for row in rows(db_t)) == [1, 2]


def test_savepoint_partial_rollback(db_t: Database):
    db_t.execute("BEGIN")
    db_t.execute("INSERT INTO t VALUES (3, 'three')")
    db_t.execute("SAVEPOINT sp1")
    db_t.execute("INSERT INTO t VALUES (4, 'four')")
    db_t.execute("ROLLBACK TO SAVEPOINT sp1")
    assert sorted(row[0] for row in rows(db_t)) == [1, 2, 3]
    # the savepoint survives ROLLBACK TO and can be reused
    db_t.execute("INSERT INTO t VALUES (5, 'five')")
    db_t.execute("ROLLBACK TO sp1")
    assert sorted(row[0] for row in rows(db_t)) == [1, 2, 3]
    db_t.execute("COMMIT")
    assert sorted(row[0] for row in rows(db_t)) == [1, 2, 3]


def test_release_savepoint_keeps_effects(db_t: Database):
    db_t.execute("BEGIN")
    db_t.execute("SAVEPOINT sp1")
    db_t.execute("INSERT INTO t VALUES (3, 'three')")
    db_t.execute("RELEASE SAVEPOINT sp1")
    with pytest.raises(ExecutionError, match="no such savepoint"):
        db_t.execute("ROLLBACK TO sp1")
    db_t.execute("COMMIT")
    assert sorted(row[0] for row in rows(db_t)) == [1, 2, 3]


def test_nested_savepoints(db_t: Database):
    db_t.execute("BEGIN")
    db_t.execute("SAVEPOINT outer_sp")
    db_t.execute("INSERT INTO t VALUES (3, 'three')")
    db_t.execute("SAVEPOINT inner_sp")
    db_t.execute("INSERT INTO t VALUES (4, 'four')")
    db_t.execute("ROLLBACK TO outer_sp")
    assert sorted(row[0] for row in rows(db_t)) == [1, 2]
    # rolling back to the outer savepoint destroyed the inner one
    with pytest.raises(ExecutionError, match="no such savepoint"):
        db_t.execute("ROLLBACK TO inner_sp")
    db_t.execute("ROLLBACK")


@pytest.mark.parametrize(
    "sql,match",
    [
        ("COMMIT", "no transaction"),
        ("ROLLBACK", "no transaction"),
        ("SAVEPOINT sp1", "requires an active transaction"),
    ],
)
def test_transaction_statements_require_context(db_t: Database, sql, match):
    with pytest.raises(ExecutionError, match=match):
        db_t.execute(sql)


def test_begin_twice_rejected(db_t: Database):
    db_t.execute("BEGIN")
    with pytest.raises(ExecutionError, match="already in progress"):
        db_t.execute("BEGIN")
    db_t.execute("ROLLBACK")


def test_failed_statement_inside_transaction_rolls_back_only_itself(db_t):
    db_t.execute("BEGIN")
    db_t.execute("INSERT INTO t VALUES (3, 'three')")
    with pytest.raises(SqlError):
        db_t.execute("INSERT INTO t VALUES (4, 'four'), ('bad', 'x')")
    # the good insert survives; the failed statement left nothing
    assert sorted(row[0] for row in rows(db_t)) == [1, 2, 3]
    db_t.execute("COMMIT")
    assert sorted(row[0] for row in rows(db_t)) == [1, 2, 3]


# ---------------------------------------------------------------------------
# statement-level atomicity (no explicit transaction)
# ---------------------------------------------------------------------------


def test_multi_row_insert_is_all_or_nothing(db_t: Database):
    before = snapshot_db(db_t)
    with pytest.raises(SqlError):
        db_t.execute("INSERT INTO t VALUES (3, 'three'), ('oops', 'x'), (5, 'five')")
    assert_snapshot_equal(db_t, before)


def test_multi_row_insert_not_null_is_all_or_nothing(db: Database):
    db.execute("CREATE TABLE n (a INTEGER NOT NULL)")
    before = snapshot_db(db)
    with pytest.raises(SqlError):
        db.execute("INSERT INTO n VALUES (1), (NULL), (3)")
    assert_snapshot_equal(db, before)
    db.execute("INSERT INTO n VALUES (1), (2)")
    assert rows(db, "n") == [[1], [2]]


def test_update_where_coerces_all_values_before_writing():
    table = Table("t", [Column("a", SqlType("INTEGER")), Column("b", SqlType("INTEGER"))])
    table.insert([1, 2])
    with pytest.raises(TypeError_):
        table.update_where(lambda row: True, lambda row: {0: 99, 1: "nope"})
    # the first assignment must not have been written
    assert table.rows == [[1, 2]]


def test_update_statement_failure_leaves_prior_rows(db_t: Database):
    # the second row's assignment divides by zero after the first row
    # was already updated; the statement guard reverts both
    before = snapshot_db(db_t)
    with pytest.raises(SqlError):
        db_t.execute("UPDATE t SET b = CAST(10 / (a - 2) AS CHAR(10))")
    assert_snapshot_equal(db_t, before)


# ---------------------------------------------------------------------------
# interplay with the bind/plan layer
# ---------------------------------------------------------------------------


def test_rollback_restores_plan_cache_validity(db_t: Database):
    stmt = parse_statement("SELECT b FROM t WHERE a = 1")
    db_t.execute_ast(stmt)  # compiles
    hits0 = db_t.stats.plan_cache_hits
    db_t.execute_ast(stmt)
    assert db_t.stats.plan_cache_hits == hits0 + 1
    db_t.execute("BEGIN")
    db_t.execute("UPDATE t SET b = 'changed' WHERE a = 1")
    db_t.execute("ROLLBACK")
    # table.version was restored, so the compiled plan still hits
    db_t.execute_ast(stmt)
    assert db_t.stats.plan_cache_hits == hits0 + 2
    assert db_t.query("SELECT b FROM t WHERE a = 1").rows == [["one"]]


def test_rollback_evicts_plans_bound_during_the_window(db_t: Database):
    db_t.execute("BEGIN")
    db_t.execute("CREATE TABLE w (x INTEGER)")
    db_t.execute("INSERT INTO w VALUES (1)")
    stmt = parse_statement("SELECT x FROM w")
    db_t.execute_ast(stmt)  # plan bound at the in-transaction schema version
    db_t.execute("ROLLBACK")
    # later DDL pushes the schema version back up to the same number;
    # the stale plan must not revalidate against the recreated table
    db_t.execute("CREATE TABLE w (x CHAR(5))")
    db_t.execute("INSERT INTO w VALUES ('abc')")
    assert db_t.execute_ast(stmt).rows == [["abc"]]


def test_rollback_restores_hash_index_consistency(db_t: Database):
    table = db_t.table("t")
    index_col = table.column_index("a")
    table.hash_index(index_col)  # built at the pre-transaction version
    db_t.execute("BEGIN")
    db_t.execute("INSERT INTO t VALUES (3, 'three')")
    table.hash_index(index_col)  # rebuilt over three rows
    db_t.execute("ROLLBACK")
    # the index built during the window is gone; a fresh build sees two rows
    index = table.hash_index(index_col)
    assert sum(len(bucket) for bucket in index.values()) == 2
