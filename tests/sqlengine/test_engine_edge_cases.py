"""Engine edge cases: composition, nesting, coercion boundaries."""

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import CatalogError, RoutineError, SqlError
from repro.sqlengine.values import Null


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b CHAR(10))")
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    return db


class TestViewComposition:
    def test_view_over_view(self, db):
        db.execute("CREATE VIEW v1 AS (SELECT a FROM t WHERE a > 1)")
        db.execute("CREATE VIEW v2 AS (SELECT a FROM v1 WHERE a < 3)")
        assert db.query("SELECT a FROM v2").rows == [[2]]

    def test_view_joined_with_table(self, db):
        db.execute("CREATE VIEW v AS (SELECT a AS k FROM t)")
        result = db.query("SELECT t.b FROM t, v WHERE t.a = v.k ORDER BY t.b")
        assert len(result) == 3

    def test_view_inside_routine(self, db):
        db.execute("CREATE VIEW v AS (SELECT MAX(a) AS m FROM t)")
        db.execute(
            "CREATE FUNCTION peak () RETURNS INTEGER READS SQL DATA"
            " LANGUAGE SQL BEGIN RETURN (SELECT m FROM v); END"
        )
        assert db.query("SELECT peak()").scalar() == 3


class TestNestedTableFunctions:
    def test_table_function_composed_with_scalar_function(self, db):
        db.execute(
            "CREATE FUNCTION double_it (x INTEGER) RETURNS INTEGER"
            " LANGUAGE SQL BEGIN RETURN x * 2; END"
        )
        db.execute("""
        CREATE FUNCTION doubled () RETURNS ROW(n INTEGER) ARRAY
        READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE res ROW(n INTEGER) ARRAY;
          INSERT INTO TABLE res (SELECT double_it(a) FROM t);
          RETURN res;
        END
        """)
        result = db.query("SELECT f.n FROM TABLE(doubled()) AS f ORDER BY f.n")
        assert [r[0] for r in result.rows] == [2, 4, 6]

    def test_two_table_functions_joined(self, db):
        db.execute("""
        CREATE FUNCTION small () RETURNS ROW(n INTEGER) ARRAY
        READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE res ROW(n INTEGER) ARRAY;
          INSERT INTO TABLE res (SELECT a FROM t WHERE a < 3);
          RETURN res;
        END
        """)
        result = db.query(
            "SELECT x.n, y.n FROM TABLE(small()) AS x, TABLE(small()) AS y"
            " WHERE x.n < y.n"
        )
        assert result.rows == [[1, 2]]


class TestScoping:
    def test_parameter_shadowed_by_column(self, db):
        # a column named like the parameter wins inside queries
        db.execute(
            "CREATE FUNCTION probe (a INTEGER) RETURNS INTEGER READS SQL DATA"
            " LANGUAGE SQL BEGIN"
            " RETURN (SELECT COUNT(*) FROM t WHERE a = a); END"
        )
        # t.a = t.a is true for all 3 rows (column shadows parameter)
        assert db.query("SELECT probe(1)").scalar() == 3

    def test_qualified_column_beats_variable(self, db):
        db.execute(
            "CREATE FUNCTION probe (x INTEGER) RETURNS INTEGER READS SQL DATA"
            " LANGUAGE SQL BEGIN"
            " RETURN (SELECT COUNT(*) FROM t WHERE t.a > x); END"
        )
        assert db.query("SELECT probe(1)").scalar() == 2

    def test_routine_frames_are_isolated(self, db):
        db.execute(
            "CREATE FUNCTION inner_fn () RETURNS INTEGER LANGUAGE SQL BEGIN"
            " DECLARE v INTEGER DEFAULT 5; RETURN v; END"
        )
        db.execute(
            "CREATE FUNCTION outer_fn () RETURNS INTEGER LANGUAGE SQL BEGIN"
            " DECLARE v INTEGER DEFAULT 1;"
            " RETURN v + inner_fn(); END"
        )
        assert db.query("SELECT outer_fn()").scalar() == 6

    def test_unknown_variable_raises(self, db):
        db.execute(
            "CREATE FUNCTION bad () RETURNS INTEGER LANGUAGE SQL BEGIN"
            " SET ghost = 1; RETURN 0; END"
        )
        with pytest.raises(RoutineError):
            db.query("SELECT bad()")


class TestCoercionBoundaries:
    def test_update_coerces_to_column_type(self, db):
        db.execute("UPDATE t SET a = '42' WHERE b = 'x'")
        assert db.query("SELECT a FROM t WHERE b = 'x'").scalar() == 42

    def test_insert_select_coerces(self, db):
        db.execute("CREATE TABLE u (a CHAR(5))")
        db.execute("INSERT INTO u SELECT a FROM t WHERE a = 1")
        assert db.query("SELECT a FROM u").scalar() == "1"

    def test_fetch_coerces_to_variable_type(self, db):
        db.execute("""
        CREATE FUNCTION first_b () RETURNS CHAR(10) READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE s CHAR(10);
          DECLARE done INTEGER DEFAULT 0;
          DECLARE c CURSOR FOR SELECT a FROM t ORDER BY a;
          DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
          OPEN c;
          FETCH c INTO s;
          CLOSE c;
          RETURN s;
        END
        """)
        assert db.query("SELECT first_b()").scalar() == "1"


class TestStatsAccounting:
    def test_statement_counter_monotone(self, db):
        before = db.stats.statements
        db.query("SELECT 1")
        assert db.stats.statements > before

    def test_reset(self, db):
        db.query("SELECT 1")
        db.stats.reset()
        assert db.stats.statements == 0
        assert db.stats.routine_calls == {}

    def test_snapshot_is_a_copy(self, db):
        snapshot = db.stats.snapshot()
        db.query("SELECT 1")
        assert snapshot["statements"] < db.stats.statements


class TestEmptyAndDegenerate:
    def test_empty_table_scan(self, db):
        db.execute("CREATE TABLE empty_t (x INTEGER)")
        assert db.query("SELECT x FROM empty_t").rows == []
        assert db.query("SELECT COUNT(*) FROM empty_t").scalar() == 0

    def test_cross_product_with_empty_is_empty(self, db):
        db.execute("CREATE TABLE empty_t (x INTEGER)")
        assert db.query("SELECT 1 FROM t, empty_t").rows == []

    def test_in_empty_list_via_subquery(self, db):
        assert db.query(
            "SELECT COUNT(*) FROM t WHERE a IN (SELECT a FROM t WHERE a > 99)"
        ).scalar() == 0

    def test_not_in_empty_subquery_keeps_all(self, db):
        assert db.query(
            "SELECT COUNT(*) FROM t WHERE a NOT IN (SELECT a FROM t WHERE a > 99)"
        ).scalar() == 3

    def test_select_null_literal(self, db):
        assert db.query("SELECT NULL").scalar() is Null
