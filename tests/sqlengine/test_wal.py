"""Durability-layer unit tests: framing, commit discipline, checkpoint,
recovery, and the generalized fault plan.

Crash simulation here is the process model the design assumes: the
in-memory ``Database`` is simply abandoned and the directory reopened,
so only what the WAL/snapshot captured survives.
"""

import os

import pytest

from repro.sqlengine.engine import Database
from repro.sqlengine.errors import FaultInjected
from repro.sqlengine.txn import FaultPlan, FaultSet
from repro.sqlengine.values import Date, Null
from repro.sqlengine.wal import (
    WalError,
    decode_row,
    decode_value,
    encode_record,
    encode_row,
    encode_value,
    frame,
    read_frames,
)
from repro.temporal.stratum import TemporalStratum


def reopen(path, db=None):
    """Abandon ``db`` (crash) and recover the directory from disk."""
    return Database.open(path)


class TestFraming:
    def test_round_trip(self):
        records = [["walhdr", 0], ["ins", "t", [1, "x"]], ["commit", 1, 100]]
        data = b"".join(frame(encode_record(r)) for r in records)
        decoded, end = read_frames(data)
        assert decoded == records
        assert end == len(data)

    def test_torn_final_record(self):
        records = [["walhdr", 0], ["ins", "t", [1]]]
        data = b"".join(frame(encode_record(r)) for r in records)
        torn = data[:-3]
        decoded, end = read_frames(torn)
        assert decoded == [["walhdr", 0]]
        assert end == len(frame(encode_record(["walhdr", 0])))

    def test_checksum_mismatch_stops_scan(self):
        good = frame(encode_record(["walhdr", 0]))
        bad = bytearray(frame(encode_record(["ins", "t", [1]])))
        bad[-1] ^= 0xFF  # flip a payload byte; CRC no longer matches
        decoded, end = read_frames(bytes(good) + bytes(bad))
        assert decoded == [["walhdr", 0]]
        assert end == len(good)

    def test_implausible_length_prefix(self):
        good = frame(encode_record(["walhdr", 0]))
        garbage = b"\xff\xff\xff\xff\x00\x00\x00\x00payload"
        decoded, end = read_frames(good + garbage)
        assert decoded == [["walhdr", 0]]
        assert end == len(good)

    def test_undecodable_payload_stops_scan(self):
        good = frame(encode_record(["walhdr", 0]))
        bad = frame(b"\x80\x81 not json")
        decoded, end = read_frames(good + bad)
        assert decoded == [["walhdr", 0]]
        assert end == len(good)

    def test_value_encoding_round_trip(self):
        row = [1, 2.5, "x", True, Null, Date.from_ymd(2010, 6, 1)]
        assert decode_row(encode_row(row)) == row
        assert decode_value(encode_value(Null)) is Null

    def test_unencodable_value_rejected(self):
        with pytest.raises(WalError):
            encode_value(object())


class TestCommitDiscipline:
    def test_autocommit_statement_is_one_transaction(self, tmp_path):
        db = Database.open(tmp_path / "d")
        db.execute("CREATE TABLE t (id INTEGER)")
        commits_after_ddl = db.obs.value("wal.commits")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert db.obs.value("wal.commits") == commits_after_ddl + 1
        assert db.obs.value("wal.fsyncs") == db.obs.value("wal.commits")

    def test_rollback_writes_nothing(self, tmp_path):
        db = Database.open(tmp_path / "d")
        db.execute("CREATE TABLE t (id INTEGER)")
        size_before = db.durability.wal_size()
        commits_before = db.obs.value("wal.commits")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")
        db.execute("ROLLBACK")
        assert db.durability.wal_size() == size_before
        assert db.obs.value("wal.commits") == commits_before
        db2 = reopen(tmp_path / "d", db)
        assert db2.query("SELECT id FROM t").rows == []

    def test_explicit_transaction_is_one_commit(self, tmp_path):
        db = Database.open(tmp_path / "d")
        db.execute("CREATE TABLE t (id INTEGER)")
        commits_before = db.obs.value("wal.commits")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")
        db.execute("COMMIT")
        assert db.obs.value("wal.commits") == commits_before + 1

    def test_savepoint_rollback_discards_window_only(self, tmp_path):
        db = Database.open(tmp_path / "d")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("SAVEPOINT s")
        db.execute("INSERT INTO t VALUES (2)")
        db.execute("ROLLBACK TO SAVEPOINT s")
        db.execute("COMMIT")
        db2 = reopen(tmp_path / "d", db)
        assert db2.query("SELECT id FROM t").rows == [[1]]

    def test_failed_statement_leaves_no_redo(self, tmp_path):
        db = Database.open(tmp_path / "d")
        db.execute("CREATE TABLE t (id INTEGER NOT NULL)")
        with pytest.raises(Exception):
            db.execute("INSERT INTO t VALUES (1), (NULL)")
        db2 = reopen(tmp_path / "d", db)
        assert db2.query("SELECT id FROM t").rows == []

    def test_uncommitted_tail_discarded_and_truncated(self, tmp_path):
        db = Database.open(tmp_path / "d")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        # forge an uncommitted tail: a begin + insert with no commit
        manager = db.durability
        tail = frame(encode_record(["begin", 99])) + frame(
            encode_record(["ins", "t", [2]])
        )
        manager._file.write(tail)
        manager._file.flush()
        os.fsync(manager._file.fileno())
        size_with_tail = manager.wal_size()
        db2 = reopen(tmp_path / "d", db)
        assert db2.query("SELECT id FROM t").rows == [[1]]
        assert db2.durability.wal_size() < size_with_tail

    def test_now_survives_reopen(self, tmp_path):
        db = Database.open(tmp_path / "d")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.now = Date.from_ymd(2010, 7, 15)
        db.close(checkpoint=False)
        db2 = reopen(tmp_path / "d")
        assert db2.now == Date.from_ymd(2010, 7, 15)


class TestCheckpoint:
    def test_checkpoint_truncates_wal_and_bumps_generation(self, tmp_path):
        db = Database.open(tmp_path / "d")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        size_before = db.durability.wal_size()
        generation = db.checkpoint()
        assert generation == 1
        assert db.durability.wal_size() < size_before
        assert (tmp_path / "d" / "snapshot.json").exists()
        db2 = reopen(tmp_path / "d", db)
        assert db2.query("SELECT id FROM t").rows == [[1]]
        assert db2.durability.generation == 1

    def test_checkpoint_rejected_inside_transaction(self, tmp_path):
        db = Database.open(tmp_path / "d")
        db.execute("BEGIN")
        with pytest.raises(WalError):
            db.checkpoint()
        db.execute("ROLLBACK")

    def test_stale_wal_generation_ignored(self, tmp_path):
        # crash between the snapshot rename and the WAL reset: the old
        # log (generation N) sits next to the new snapshot (N+1) and
        # must not be double-applied
        db = Database.open(tmp_path / "d")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        old_wal = (tmp_path / "d" / "wal.log").read_bytes()
        db.checkpoint()
        db.close(checkpoint=False)
        (tmp_path / "d" / "wal.log").write_bytes(old_wal)  # resurrect
        db2 = reopen(tmp_path / "d")
        assert db2.query("SELECT id FROM t").rows == [[1]]
        assert db2.durability.generation == 1

    def test_corrupt_snapshot_rejected(self, tmp_path):
        db = Database.open(tmp_path / "d")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.close()
        snapshot = tmp_path / "d" / "snapshot.json"
        raw = bytearray(snapshot.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        snapshot.write_bytes(bytes(raw))
        with pytest.raises(WalError):
            Database.open(tmp_path / "d")

    def test_auto_checkpoint_on_threshold(self, tmp_path):
        db = Database()
        db.attach_durability(tmp_path / "d", auto_checkpoint_bytes=512)
        db.execute("CREATE TABLE t (id INTEGER, pad CHAR(40))")
        for i in range(40):
            db.execute(f"INSERT INTO t VALUES ({i}, 'x')")
        assert db.obs.value("checkpoint.writes") >= 1
        db2 = reopen(tmp_path / "d", db)
        assert len(db2.query("SELECT id FROM t").rows) == 40


class TestRecoveryDdl:
    def test_views_and_routines_survive(self, tmp_path):
        db = Database.open(tmp_path / "d")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.execute("CREATE VIEW v AS SELECT id FROM t WHERE id > 1")
        db.execute(
            "CREATE FUNCTION double_it (x INTEGER) RETURNS INTEGER"
            " LANGUAGE SQL BEGIN RETURN x * 2; END"
        )
        db.close(checkpoint=False)  # force WAL replay, not snapshot load
        db2 = reopen(tmp_path / "d")
        assert db2.query("SELECT id FROM v").rows == [[2]]
        assert db2.query("SELECT double_it(21) AS r FROM t WHERE id = 1").rows \
            == [[42]]

    def test_drop_table_replays(self, tmp_path):
        db = Database.open(tmp_path / "d")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("CREATE TABLE u (id INTEGER)")
        db.execute("DROP TABLE t")
        db.close(checkpoint=False)
        db2 = reopen(tmp_path / "d")
        assert not db2.catalog.has_table("t")
        assert db2.catalog.has_table("u")

    def test_alter_add_column_replays(self, tmp_path):
        stratum = TemporalStratum.open(tmp_path / "d")
        stratum.db.execute("CREATE TABLE emp (name CHAR(10))")
        stratum.execute("ALTER TABLE emp ADD VALIDTIME")
        stratum.db.execute(
            "INSERT INTO emp VALUES"
            " ('ann', DATE '2010-01-01', DATE '2011-01-01')"
        )
        stratum.close(checkpoint=False)
        s2 = TemporalStratum.open(tmp_path / "d")
        assert s2.registry.is_temporal("emp")
        table = s2.db.catalog.get_table("emp")
        assert table.column_names == ["name", "begin_time", "end_time"]
        assert len(table) == 1

    def test_registry_requires_stratum_open(self, tmp_path):
        stratum = TemporalStratum.open(tmp_path / "d")
        stratum.db.execute(
            "CREATE TABLE emp (name CHAR(10), begin_time DATE, end_time DATE)"
        )
        stratum.execute("ALTER TABLE emp ADD VALIDTIME")
        stratum.close()
        # plain Database.open cannot rebuild temporal registries
        with pytest.raises(WalError):
            Database.open(tmp_path / "d")


class TestFaultPlanGeneralization:
    def test_single_shot_unchanged(self):
        plan = FaultPlan("table.insert", at=2)
        plan.hit("table.insert", "t")
        with pytest.raises(FaultInjected):
            plan.hit("table.insert", "t")
        assert plan.fired
        plan.hit("table.insert", "t")  # spent: never fires again

    def test_every_nth(self):
        plan = FaultPlan("wal.fsync", at=2, every=3, times=None)
        fired_at = []
        for n in range(1, 12):
            try:
                plan.hit("wal.fsync", "wal")
            except FaultInjected:
                fired_at.append(n)
        assert fired_at == [2, 5, 8, 11]

    def test_times_caps_firings(self):
        plan = FaultPlan("wal.fsync", at=1, every=1, times=2)
        fired = 0
        for _ in range(6):
            try:
                plan.hit("wal.fsync", "wal")
            except FaultInjected:
                fired += 1
        assert fired == 2
        assert plan.spent

    def test_fault_set_arms_multiple_sites(self):
        insert_plan = FaultPlan("table.insert", at=2)
        fsync_plan = FaultPlan("wal.fsync")
        plans = FaultSet(insert_plan, fsync_plan)
        plans.hit("table.insert", "t")
        assert not plans.fired
        with pytest.raises(FaultInjected):
            plans.hit("wal.fsync", "wal")
        assert plans.fired
        with pytest.raises(FaultInjected):
            plans.hit("table.insert", "t")

    def test_wal_fsync_fault_durable_write_survives(self, tmp_path):
        # the fault fires after write+flush: the commit is on disk, so
        # the "crashed" transaction is visible after recovery — the WAL
        # contract (committed = logged) holds
        db = Database.open(tmp_path / "d")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.txn.fault_plan = FaultPlan("wal.fsync")
        with pytest.raises(FaultInjected):
            db.execute("INSERT INTO t VALUES (1)")
        db2 = reopen(tmp_path / "d", db)
        assert db2.query("SELECT id FROM t").rows == [[1]]


class TestDisabledPath:
    def test_no_durability_attribute_stays_none(self, db):
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.durability is None
        assert db.txn.wal is None

    def test_close_without_durability_is_noop(self, db):
        db.close()

    def test_double_attach_rejected(self, tmp_path):
        db = Database.open(tmp_path / "d")
        with pytest.raises(WalError):
            db.attach_durability(tmp_path / "d2")
