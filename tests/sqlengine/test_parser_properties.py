"""Property-based parser/renderer tests.

Hypothesis composes random expressions and queries from AST builders,
renders them to SQL, and asserts the parse→render loop is a fixed point
(the property the stratum's source-to-source guarantee rests on), and
that rendered expressions evaluate without crashing.
"""

from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import SqlError
from repro.sqlengine.parser import parse_expression, parse_statement
from repro.sqlengine.values import Date, Null

# -- expression strategies ---------------------------------------------------

literals = st.one_of(
    st.integers(min_value=-1000, max_value=1000).map(lambda v: ast.Literal(value=v)),
    st.floats(min_value=-100, max_value=100, allow_nan=False)
      .map(lambda v: ast.Literal(value=round(v, 3))),
    st.text(alphabet="abcXYZ _", max_size=8).map(lambda v: ast.Literal(value=v)),
    st.just(ast.Literal(value=Null)),
    st.booleans().map(lambda v: ast.Literal(value=v)),
    st.integers(min_value=719163, max_value=740000).map(
        lambda o: ast.Literal(value=Date(o))
    ),
)

names = st.sampled_from(["a", "b", "price"]).map(
    lambda n: ast.Name(qualifier=None, name=n)
)


def binary(children):
    return st.tuples(
        st.sampled_from(["+", "-", "*", "=", "<", ">", "<=", ">=", "<>", "||"]),
        children,
        children,
    ).map(lambda t: ast.BinaryOp(op=t[0], left=t[1], right=t[2]))


def logic(children):
    return st.tuples(
        st.sampled_from(["AND", "OR"]), children, children
    ).map(lambda t: ast.BinaryOp(op=t[0], left=t[1], right=t[2]))


def wrapped(children):
    return children.map(lambda e: ast.Parenthesized(expr=e))


def negated(children):
    return children.map(lambda e: ast.UnaryOp(op="NOT", operand=e))


def case_expr(children):
    return st.tuples(children, children, children).map(
        lambda t: ast.CaseExpr(
            operand=None, whens=[(t[0], t[1])], else_expr=t[2]
        )
    )


def calls(children):
    return st.tuples(
        st.sampled_from(["COALESCE", "UPPER", "ABS", "FIRST_INSTANCE"]),
        children,
        children,
    ).map(lambda t: ast.FunctionCall(name=t[0], args=[t[1], t[2]]))


expressions = st.recursive(
    st.one_of(literals, names),
    lambda children: st.one_of(
        binary(children), logic(children), wrapped(children),
        negated(children), case_expr(children), calls(children),
    ),
    max_leaves=12,
)


class TestRenderParseFixedPoint:
    @settings(max_examples=200, deadline=None)
    @given(expressions)
    def test_expression_round_trip(self, expr):
        rendered = expr.to_sql()
        reparsed = parse_expression(rendered)
        assert reparsed.to_sql() == rendered

    @settings(max_examples=100, deadline=None)
    @given(expressions, expressions)
    def test_query_round_trip(self, item_expr, where_expr):
        select = ast.Select(
            items=[ast.SelectItem(expr=item_expr, alias="x")],
            from_items=[ast.TableRef(name="t")],
            where=where_expr,
        )
        rendered = select.to_sql()
        assert parse_statement(rendered).to_sql() == rendered


class TestEvaluationTotality:
    """Rendered random expressions evaluate or raise a SqlError — never
    crash with an arbitrary Python exception."""

    @settings(max_examples=200, deadline=None)
    @given(expressions)
    def test_evaluate_never_crashes(self, expr):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b CHAR(5), price FLOAT)")
        db.execute("INSERT INTO t VALUES (1, 'x', 9.5)")
        try:
            db.query(f"SELECT {expr.to_sql()} FROM t")
        except SqlError:
            pass  # type mismatches etc. must surface as engine errors
