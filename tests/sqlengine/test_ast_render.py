"""AST → SQL rendering round-trips.

The temporal stratum's output is rendered SQL text (that is what makes
the transformation source-to-source), so `parse(render(parse(x)))` must
produce the same rendering — rendering is a fixed point.
"""

import pytest

from repro.sqlengine.parser import parse_statement

ROUND_TRIP_STATEMENTS = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b AS x FROM t u WHERE a = 1 AND b < 2",
    "SELECT * FROM t",
    "SELECT t.* FROM t, u",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 5",
    "SELECT a FROM t WHERE a NOT IN (1, 2)",
    "SELECT a FROM t WHERE a IN (SELECT b FROM u)",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)",
    "SELECT a FROM t WHERE name LIKE 'B%'",
    "SELECT a FROM t WHERE a IS NOT NULL",
    "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
    "SELECT CAST(a AS INTEGER) FROM t",
    "SELECT COUNT(*), SUM(a) FROM t GROUP BY b HAVING COUNT(*) > 1",
    "SELECT a FROM t ORDER BY a DESC, b LIMIT 3",
    "SELECT a FROM t UNION ALL SELECT a FROM u",
    "SELECT a FROM t INNER JOIN u ON t.x = u.x",
    "SELECT a FROM t LEFT JOIN u ON t.x = u.x",
    "SELECT f.x FROM TABLE(g(1, a)) AS f",
    "SELECT a FROM (SELECT a FROM t) AS s",
    "SELECT DATE '2010-06-01' + 1 FROM t",
    "INSERT INTO t (a, b) VALUES (1, 'x''y')",
    "INSERT INTO t SELECT a FROM u",
    "UPDATE t SET a = a + 1 WHERE b = 2",
    "DELETE FROM t WHERE a = 1",
    "CREATE TABLE t (a INTEGER NOT NULL, b CHAR(10))",
    "CREATE VIEW v AS (SELECT a FROM t)",
    "DROP TABLE t",
    "ALTER TABLE t ADD VALIDTIME",
    "CALL p(1, 'x')",
    "VALIDTIME SELECT a FROM t",
    "VALIDTIME [DATE '2010-01-01', DATE '2011-01-01'] SELECT a FROM t",
    "NONSEQUENCED VALIDTIME SELECT a FROM t",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_STATEMENTS)
def test_render_is_fixed_point(sql):
    first = parse_statement(sql).to_sql()
    second = parse_statement(first).to_sql()
    assert first == second


ROUTINE = """
CREATE FUNCTION f (x INTEGER, s CHAR(5))
RETURNS INTEGER
READS SQL DATA
LANGUAGE SQL
BEGIN
  DECLARE v INTEGER DEFAULT 0;
  DECLARE c CURSOR FOR SELECT a FROM t;
  DECLARE CONTINUE HANDLER FOR NOT FOUND SET v = -1;
  OPEN c;
  FETCH c INTO v;
  CLOSE c;
  IF v > 0 THEN
    SET v = v * 2;
  ELSEIF v = 0 THEN
    SET v = 1;
  ELSE
    SET v = 0;
  END IF;
  CASE WHEN v = 2 THEN SET v = 3; ELSE SET v = 4; END CASE;
  w1: WHILE v < 10 DO
    SET v = v + 1;
    IF v = 7 THEN ITERATE w1; END IF;
    IF v = 9 THEN LEAVE w1; END IF;
  END WHILE w1;
  REPEAT SET v = v + 1; UNTIL v > 12 END REPEAT;
  f1: FOR rec AS SELECT a FROM t DO
    SET v = v + rec.a;
  END FOR f1;
  RETURN v;
END
"""


def test_routine_render_is_fixed_point():
    first = parse_statement(ROUTINE).to_sql()
    second = parse_statement(first).to_sql()
    assert first == second


def test_row_array_function_round_trip():
    sql = (
        "CREATE FUNCTION f () RETURNS ROW(a INTEGER, b DATE) ARRAY"
        " READS SQL DATA LANGUAGE SQL BEGIN"
        " DECLARE r ROW(a INTEGER, b DATE) ARRAY;"
        " INSERT INTO TABLE r (SELECT a, b FROM t);"
        " RETURN r; END"
    )
    first = parse_statement(sql).to_sql()
    second = parse_statement(first).to_sql()
    assert first == second


def test_procedure_round_trip():
    sql = (
        "CREATE PROCEDURE p (IN a INTEGER, OUT b INTEGER)"
        " LANGUAGE SQL BEGIN SET b = a; CALL q(b); END"
    )
    first = parse_statement(sql).to_sql()
    second = parse_statement(first).to_sql()
    assert first == second


def test_rendered_text_is_executable():
    from repro.sqlengine import Database

    db = Database()
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    stmt = parse_statement("SELECT a FROM t WHERE a = 2")
    assert db.execute(stmt.to_sql()).rows == [[2]]
