"""INSERT / UPDATE / DELETE and DDL execution tests."""

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import CatalogError, ExecutionError
from repro.sqlengine.values import Null


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b CHAR(10))")
    return db


class TestInsert:
    def test_values_returns_count(self, db):
        assert db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')") == 2

    def test_column_list_fills_nulls(self, db):
        db.execute("INSERT INTO t (a) VALUES (7)")
        assert db.query("SELECT b FROM t").scalar() is Null

    def test_insert_select(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("CREATE TABLE u (a INTEGER, b CHAR(10))")
        assert db.execute("INSERT INTO u SELECT a, b FROM t") == 1

    def test_insert_coerces(self, db):
        db.execute("INSERT INTO t VALUES ('5', 42)")
        assert db.query("SELECT a, b FROM t").rows == [[5, "42"]]

    def test_rows_written_counter(self, db):
        before = db.stats.rows_written
        db.execute("INSERT INTO t VALUES (1, 'x')")
        assert db.stats.rows_written == before + 1


class TestUpdate:
    def test_update_with_where(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert db.execute("UPDATE t SET b = 'z' WHERE a = 1") == 1
        assert sorted(r[0] for r in db.query("SELECT b FROM t").rows) == ["y", "z"]
        assert db.query("SELECT b FROM t WHERE a = 1").scalar() == "z"

    def test_update_references_old_values(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("UPDATE t SET a = a + 10")
        assert db.query("SELECT a FROM t").scalar() == 11

    def test_update_with_alias(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("UPDATE t x SET b = 'q' WHERE x.a = 1")
        assert db.query("SELECT b FROM t").scalar() == "q"

    def test_swap_semantics(self, db):
        db.execute("CREATE TABLE s (x INTEGER, y INTEGER)")
        db.execute("INSERT INTO s VALUES (1, 2)")
        db.execute("UPDATE s SET x = y, y = x")
        assert db.query("SELECT x, y FROM s").rows == [[2, 1]]


class TestDelete:
    def test_delete_with_where(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert db.execute("DELETE FROM t WHERE a = 1") == 1
        assert len(db.query("SELECT * FROM t")) == 1

    def test_delete_all(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert db.execute("DELETE FROM t") == 2


class TestDdl:
    def test_create_table_as(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("CREATE TABLE copy AS (SELECT a, b FROM t)")
        assert db.query("SELECT a FROM copy").scalar() == 1

    def test_temporary_table_replaceable(self, db):
        db.execute("CREATE TEMPORARY TABLE tmp AS (SELECT 1 AS n)")
        db.execute("CREATE TEMPORARY TABLE tmp AS (SELECT 2 AS n)")
        assert db.query("SELECT n FROM tmp").scalar() == 2

    def test_duplicate_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (z INTEGER)")

    def test_drop_table(self, db):
        db.execute("DROP TABLE t")
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM t")

    def test_drop_missing_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE nope")

    def test_execute_script(self, db):
        results = db.execute_script(
            "INSERT INTO t VALUES (1, 'x'); SELECT a FROM t;"
        )
        assert results[0] == 1
        assert results[1].rows == [[1]]

    def test_query_on_non_query_raises(self, db):
        with pytest.raises(TypeError):
            db.query("INSERT INTO t VALUES (1, 'x')")

    def test_modifier_requires_stratum(self, db):
        with pytest.raises(ExecutionError):
            db.execute("VALIDTIME SELECT a FROM t")

    def test_alter_validtime_requires_stratum(self, db):
        with pytest.raises(ExecutionError):
            db.execute("ALTER TABLE t ADD VALIDTIME")
