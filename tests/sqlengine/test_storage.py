"""Storage-layer tests: tables, mutation, hash indexes."""

import pytest

from repro.sqlengine.errors import CatalogError, ExecutionError
from repro.sqlengine.storage import Column, Table
from repro.sqlengine.types import INTEGER, varchar
from repro.sqlengine.values import Null, sort_key


def make_table():
    return Table("t", [Column("id", INTEGER), Column("name", varchar(20))])


class TestTableBasics:
    def test_column_index_case_insensitive(self):
        table = make_table()
        assert table.column_index("ID") == 0
        assert table.column_index("Name") == 1

    def test_unknown_column_raises(self):
        with pytest.raises(CatalogError):
            make_table().column_index("nope")

    def test_duplicate_columns_raise(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a", INTEGER), Column("A", INTEGER)])

    def test_insert_full_row(self):
        table = make_table()
        table.insert([1, "x"])
        assert table.rows == [[1, "x"]]

    def test_insert_with_column_subset(self):
        table = make_table()
        table.insert([5], columns=["id"])
        assert table.rows[0][1] is Null

    def test_insert_wrong_arity_raises(self):
        with pytest.raises(ExecutionError):
            make_table().insert([1])

    def test_not_null_enforced(self):
        table = Table("t", [Column("a", INTEGER, not_null=True)])
        with pytest.raises(ExecutionError):
            table.insert([Null])

    def test_primary_key_implies_not_null(self):
        table = Table("t", [Column("a", INTEGER, primary_key=True)])
        assert table.columns[0].not_null

    def test_delete_where(self):
        table = make_table()
        table.insert([1, "x"])
        table.insert([2, "y"])
        removed = table.delete_where(lambda row: row[0] == 1)
        assert removed == 1
        assert len(table) == 1

    def test_update_where(self):
        table = make_table()
        table.insert([1, "x"])
        count = table.update_where(lambda r: True, lambda r: {1: "z"})
        assert count == 1
        assert table.rows[0][1] == "z"

    def test_clone_empty(self):
        table = make_table()
        table.insert([1, "x"])
        clone = table.clone_empty("u")
        assert clone.name == "u"
        assert len(clone) == 0
        assert clone.column_names == table.column_names


class TestHashIndex:
    def test_lookup(self):
        table = make_table()
        table.insert([1, "x"])
        table.insert([2, "y"])
        table.insert([2, "z"])
        index = table.hash_index(0)
        assert len(index[sort_key(2)]) == 2

    def test_null_excluded(self):
        table = make_table()
        table.insert([Null, "x"], columns=["id", "name"])
        assert sort_key(Null) not in table.hash_index(0)

    def test_invalidated_on_insert(self):
        table = make_table()
        table.insert([1, "x"])
        first = table.hash_index(0)
        table.insert([1, "y"])
        second = table.hash_index(0)
        assert len(second[sort_key(1)]) == 2
        assert first is not second

    def test_invalidated_on_delete(self):
        table = make_table()
        table.insert([1, "x"])
        table.hash_index(0)
        table.delete_where(lambda r: True)
        assert sort_key(1) not in table.hash_index(0)

    def test_cached_when_unchanged(self):
        table = make_table()
        table.insert([1, "x"])
        assert table.hash_index(0) is table.hash_index(0)

    def test_truncate_bumps_version(self):
        table = make_table()
        table.insert([1, "x"])
        version = table.version
        table.truncate()
        assert table.version > version
