"""Condition handlers and routine atomicity (SQL/PSM ISO 9075-4).

The PSM interpreter wraps every routine statement in an undo-log mark:
a failed statement's partial effects are reverted before the handler
search begins, so a CONTINUE handler resumes with exactly the failing
statement undone, an EXIT handler additionally unwinds its compound,
and an unhandled exception leaves the whole routine without net effect.
"""

from __future__ import annotations

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import RoutineError, SignalError

from tests.faultinject import assert_snapshot_equal, snapshot_db


@pytest.fixture
def db_h(db: Database) -> Database:
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("CREATE TABLE log (msg CHAR(20))")
    # inserts two rows, then fails: the CALL statement is rolled back as
    # a unit wherever it appears
    db.execute(
        """
        CREATE PROCEDURE fail_mid ()
        LANGUAGE SQL
        BEGIN
          INSERT INTO t VALUES (101);
          INSERT INTO t VALUES (102);
          SIGNAL SQLSTATE '45000' SET MESSAGE_TEXT = 'boom';
        END
        """
    )
    return db


def values(db: Database, table: str = "t"):
    return sorted(row[0] for row in db.table(table).rows)


def test_unhandled_exception_reverts_whole_routine(db_h: Database):
    before = snapshot_db(db_h)
    with pytest.raises(SignalError) as excinfo:
        db_h.execute("CALL fail_mid()")
    assert excinfo.value.sqlstate == "45000"
    assert excinfo.value.message == "boom"
    assert_snapshot_equal(db_h, before)


def test_continue_handler_resumes_after_failed_statement(db_h: Database):
    db_h.execute(
        """
        CREATE PROCEDURE p ()
        LANGUAGE SQL
        BEGIN
          DECLARE CONTINUE HANDLER FOR SQLEXCEPTION
            INSERT INTO log VALUES ('handled');
          INSERT INTO t VALUES (1);
          CALL fail_mid();
          INSERT INTO t VALUES (3);
        END
        """
    )
    db_h.execute("CALL p()")
    # the failed CALL's two inserts are gone; execution resumed
    assert values(db_h) == [1, 3]
    assert values(db_h, "log") == ["handled"]


def test_exit_handler_unwinds_one_compound_only(db_h: Database):
    db_h.execute(
        """
        CREATE PROCEDURE p ()
        LANGUAGE SQL
        BEGIN
          INSERT INTO t VALUES (1);
          BEGIN
            DECLARE EXIT HANDLER FOR SQLEXCEPTION
              INSERT INTO log VALUES ('handled');
            INSERT INTO t VALUES (2);
            CALL fail_mid();
            INSERT INTO t VALUES (3);
          END;
          INSERT INTO t VALUES (4);
        END
        """
    )
    db_h.execute("CALL p()")
    # 2 survives (its statement succeeded before the failure), 3 is
    # skipped (EXIT leaves the inner compound), 4 runs (outer continues)
    assert values(db_h) == [1, 2, 4]
    assert values(db_h, "log") == ["handled"]


def test_handler_in_caller_catches_callee_failure(db_h: Database):
    db_h.execute(
        """
        CREATE PROCEDURE outer_p ()
        LANGUAGE SQL
        BEGIN
          DECLARE CONTINUE HANDLER FOR SQLSTATE '45000'
            INSERT INTO log VALUES ('caught');
          CALL fail_mid();
          INSERT INTO t VALUES (9);
        END
        """
    )
    db_h.execute("CALL outer_p()")
    assert values(db_h) == [9]
    assert values(db_h, "log") == ["caught"]


def test_sqlstate_handler_preferred_over_sqlexception(db_h: Database):
    db_h.execute(
        """
        CREATE PROCEDURE p ()
        LANGUAGE SQL
        BEGIN
          DECLARE CONTINUE HANDLER FOR SQLEXCEPTION
            INSERT INTO log VALUES ('generic');
          DECLARE CONTINUE HANDLER FOR SQLSTATE '45001'
            INSERT INTO log VALUES ('specific');
          SIGNAL SQLSTATE '45001';
        END
        """
    )
    db_h.execute("CALL p()")
    assert values(db_h, "log") == ["specific"]


def test_signal_with_unmatched_sqlstate_falls_back_to_sqlexception(db_h):
    db_h.execute(
        """
        CREATE PROCEDURE p ()
        LANGUAGE SQL
        BEGIN
          DECLARE CONTINUE HANDLER FOR SQLEXCEPTION
            INSERT INTO log VALUES ('generic');
          SIGNAL SQLSTATE '45002';
        END
        """
    )
    db_h.execute("CALL p()")
    assert values(db_h, "log") == ["generic"]


def test_not_found_handler_untouched_by_statement_guards(db_h: Database):
    db_h.execute(
        """
        CREATE PROCEDURE p ()
        LANGUAGE SQL
        BEGIN
          DECLARE n INTEGER;
          DECLARE done INTEGER DEFAULT 0;
          DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
          INSERT INTO t VALUES (1);
          SELECT a INTO n FROM t WHERE a = 999;
          INSERT INTO t VALUES (done);
        END
        """
    )
    db_h.execute("CALL p()")
    # NOT FOUND is a completion condition: nothing was rolled back and
    # the handler ran (done = 1)
    assert values(db_h) == [1, 1]


def test_failing_handler_action_does_not_recurse(db_h: Database):
    db_h.execute(
        """
        CREATE PROCEDURE p ()
        LANGUAGE SQL
        BEGIN
          DECLARE CONTINUE HANDLER FOR SQLEXCEPTION
            SIGNAL SQLSTATE '45009' SET MESSAGE_TEXT = 'handler failed';
          CALL fail_mid();
        END
        """
    )
    before = snapshot_db(db_h)
    with pytest.raises(SignalError) as excinfo:
        db_h.execute("CALL p()")
    # the handler's own failure propagates instead of looping forever
    assert excinfo.value.sqlstate == "45009"
    assert_snapshot_equal(db_h, before)


def test_handler_goes_out_of_scope_with_its_compound(db_h: Database):
    db_h.execute(
        """
        CREATE PROCEDURE p ()
        LANGUAGE SQL
        BEGIN
          BEGIN
            DECLARE CONTINUE HANDLER FOR SQLEXCEPTION
              INSERT INTO log VALUES ('inner');
            INSERT INTO t VALUES (1);
          END;
          CALL fail_mid();
        END
        """
    )
    before = snapshot_db(db_h)
    with pytest.raises(SignalError):
        db_h.execute("CALL p()")
    assert_snapshot_equal(db_h, before)


def test_transaction_statements_rejected_inside_routines(db_h: Database):
    db_h.execute(
        """
        CREATE PROCEDURE p ()
        LANGUAGE SQL
        BEGIN
          ROLLBACK;
        END
        """
    )
    with pytest.raises(RoutineError, match="not allowed inside routines"):
        db_h.execute("CALL p()")


def test_signal_renders_back_to_sql():
    from repro.sqlengine.parser import parse_statement

    proc = parse_statement(
        "CREATE PROCEDURE p () LANGUAGE SQL BEGIN"
        " SIGNAL SQLSTATE '45000' SET MESSAGE_TEXT = 'it''s bad'; END"
    )
    rendered = proc.to_sql()
    assert "SIGNAL SQLSTATE '45000'" in rendered
    assert "MESSAGE_TEXT = 'it''s bad'" in rendered
    # and the rendering re-parses
    parse_statement(rendered)


# ---------------------------------------------------------------------------
# watchdog cancellations dispatch exactly like SIGNAL-raised states
# ---------------------------------------------------------------------------
#
# The watchdog check runs inside each routine statement's undo-log
# guard, so QueryCancelled (SQLSTATE 57014, a SignalError subclass)
# must hit CONTINUE/EXIT handlers exactly as a statement-raised SIGNAL
# would.  ``cancel_at_check`` indices below were chosen against the
# deterministic check schedule (one check at the top-level dispatch,
# one per PSM statement boundary, one per engine statement dispatch)
# to land the cancellation on a specific body statement.


def test_continue_handler_fires_for_watchdog_cancellation(db_h: Database):
    db_h.execute(
        """
        CREATE PROCEDURE p ()
        LANGUAGE SQL
        BEGIN
          DECLARE CONTINUE HANDLER FOR SQLSTATE '57014'
            INSERT INTO log VALUES ('cancelled');
          INSERT INTO t VALUES (1);
          INSERT INTO t VALUES (2);
          INSERT INTO t VALUES (3);
        END
        """
    )
    # check #6 is the second INSERT's statement boundary: it is undone
    # (never ran), the handler logs, execution resumes at the third
    db_h.resilience.cancel_at_check = 6
    db_h.execute("CALL p()")
    assert values(db_h) == [1, 3]
    assert values(db_h, "log") == ["cancelled"]


def test_exit_handler_fires_for_watchdog_cancellation(db_h: Database):
    db_h.execute(
        """
        CREATE PROCEDURE p ()
        LANGUAGE SQL
        BEGIN
          INSERT INTO t VALUES (1);
          BEGIN
            DECLARE EXIT HANDLER FOR SQLSTATE '57014'
              INSERT INTO log VALUES ('exit');
            INSERT INTO t VALUES (2);
            INSERT INTO t VALUES (3);
            INSERT INTO t VALUES (4);
          END;
          INSERT INTO t VALUES (5);
        END
        """
    )
    # check #9 cancels the third INSERT: the EXIT handler logs and
    # unwinds its compound only; the outer compound resumes
    db_h.resilience.cancel_at_check = 9
    db_h.execute("CALL p()")
    assert values(db_h) == [1, 2, 5]
    assert values(db_h, "log") == ["exit"]


def test_cancellation_outside_handler_scope_cascades(db_h: Database):
    db_h.execute(
        """
        CREATE PROCEDURE p ()
        LANGUAGE SQL
        BEGIN
          INSERT INTO t VALUES (1);
          BEGIN
            DECLARE EXIT HANDLER FOR SQLSTATE '57014'
              INSERT INTO log VALUES ('exit');
            INSERT INTO t VALUES (2);
          END;
          INSERT INTO t VALUES (5);
        END
        """
    )
    before = snapshot_db(db_h)
    # a cancellation after the inner compound closed finds no handler:
    # full routine atomicity, exactly like an unhandled SIGNAL
    db_h.resilience.cancel_at_check = 9
    from repro.sqlengine.errors import QueryCancelled

    with pytest.raises(QueryCancelled):
        db_h.execute("CALL p()")
    assert_snapshot_equal(db_h, before)


def test_deadline_cancellation_cascades_through_handlers(db_h: Database):
    db_h.execute(
        """
        CREATE PROCEDURE p ()
        LANGUAGE SQL
        BEGIN
          DECLARE CONTINUE HANDLER FOR SQLSTATE '57014'
            INSERT INTO log VALUES ('cancelled');
          INSERT INTO t VALUES (1);
        END
        """
    )
    from repro.sqlengine.errors import QueryCancelled

    before = snapshot_db(db_h)
    # an expired deadline re-fires at every check, so even a matching
    # CONTINUE handler cannot absorb it: its own action is cancelled
    # too and the routine unwinds without net effect
    db_h.resilience.statement_timeout = 0.0
    with pytest.raises(QueryCancelled):
        db_h.execute("CALL p()")
    db_h.resilience.statement_timeout = None
    assert_snapshot_equal(db_h, before)


def test_signalled_57014_hits_same_handler(db_h: Database):
    # parity check: an explicit SIGNAL of the cancellation state takes
    # the identical handler path the watchdog uses
    db_h.execute(
        """
        CREATE PROCEDURE p ()
        LANGUAGE SQL
        BEGIN
          DECLARE CONTINUE HANDLER FOR SQLSTATE '57014'
            INSERT INTO log VALUES ('cancelled');
          INSERT INTO t VALUES (1);
          SIGNAL SQLSTATE '57014' SET MESSAGE_TEXT = 'stop';
          INSERT INTO t VALUES (3);
        END
        """
    )
    db_h.execute("CALL p()")
    assert values(db_h) == [1, 3]
    assert values(db_h, "log") == ["cancelled"]
