"""Query-execution tests: scans, joins, aggregation, subqueries, views."""

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import (
    CardinalityError,
    CatalogError,
    ExecutionError,
)
from repro.sqlengine.values import Date, Null


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE emp (id INTEGER, name CHAR(20), dept CHAR(10), salary FLOAT)")
    db.execute("INSERT INTO emp VALUES (1, 'ann', 'eng', 100.0)")
    db.execute("INSERT INTO emp VALUES (2, 'bob', 'eng', 80.0)")
    db.execute("INSERT INTO emp VALUES (3, 'cat', 'ops', 90.0)")
    db.execute("CREATE TABLE dept (code CHAR(10), city CHAR(20))")
    db.execute("INSERT INTO dept VALUES ('eng', 'tucson')")
    db.execute("INSERT INTO dept VALUES ('hr', 'boston')")
    return db


class TestBasicSelect:
    def test_projection(self, db):
        result = db.query("SELECT name FROM emp WHERE id = 2")
        assert result.rows == [["bob"]]

    def test_star(self, db):
        result = db.query("SELECT * FROM emp WHERE id = 1")
        assert result.columns == ["id", "name", "dept", "salary"]

    def test_qualified_star(self, db):
        result = db.query("SELECT e.* FROM emp e, dept d WHERE e.dept = d.code AND e.id = 1")
        assert len(result.columns) == 4

    def test_expression_in_select_list(self, db):
        result = db.query("SELECT salary * 2 AS double_pay FROM emp WHERE id = 1")
        assert result.columns == ["double_pay"]
        assert result.rows == [[200.0]]

    def test_from_less_select(self, db):
        assert db.query("SELECT 1 + 1").rows == [[2]]

    def test_where_filters_unknown(self, db):
        db.execute("INSERT INTO emp VALUES (4, 'dan', NULL, NULL)")
        result = db.query("SELECT id FROM emp WHERE salary > 0")
        assert [r[0] for r in result.rows] == [1, 2, 3]

    def test_distinct(self, db):
        result = db.query("SELECT DISTINCT dept FROM emp ORDER BY dept")
        assert result.rows == [["eng"], ["ops"]]

    def test_order_by_desc(self, db):
        result = db.query("SELECT name FROM emp ORDER BY salary DESC")
        assert [r[0] for r in result.rows] == ["ann", "cat", "bob"]

    def test_order_by_source_column_not_projected(self, db):
        result = db.query("SELECT name FROM emp ORDER BY id DESC")
        assert [r[0] for r in result.rows] == ["cat", "bob", "ann"]

    def test_order_by_position(self, db):
        result = db.query("SELECT name, salary FROM emp ORDER BY 2")
        assert result.rows[0][0] == "bob"

    def test_limit(self, db):
        assert len(db.query("SELECT id FROM emp ORDER BY id LIMIT 2")) == 2

    def test_missing_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT 1 FROM nope")

    def test_ambiguous_column_raises(self, db):
        db.execute("CREATE TABLE emp2 (id INTEGER)")
        db.execute("INSERT INTO emp2 VALUES (9)")
        with pytest.raises(ExecutionError):
            db.query("SELECT id FROM emp, emp2")


class TestJoins:
    def test_comma_join_with_predicate(self, db):
        result = db.query(
            "SELECT e.name, d.city FROM emp e, dept d WHERE e.dept = d.code"
            " ORDER BY e.name"
        )
        assert result.rows == [["ann", "tucson"], ["bob", "tucson"]]

    def test_inner_join_on(self, db):
        result = db.query(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.code"
        )
        assert len(result) == 2

    def test_left_join_produces_nulls(self, db):
        result = db.query(
            "SELECT e.name, d.city FROM emp e LEFT JOIN dept d"
            " ON e.dept = d.code ORDER BY e.name"
        )
        assert result.rows[2] == ["cat", Null]

    def test_cross_join(self, db):
        assert len(db.query("SELECT 1 FROM emp CROSS JOIN dept")) == 6

    def test_self_join(self, db):
        result = db.query(
            "SELECT a.name FROM emp a, emp b"
            " WHERE a.salary > b.salary AND b.name = 'bob'"
        )
        assert sorted(r[0] for r in result.rows) == ["ann", "cat"]


class TestAggregation:
    def test_count_star(self, db):
        assert db.query("SELECT COUNT(*) FROM emp").scalar() == 3

    def test_count_column_skips_nulls(self, db):
        db.execute("INSERT INTO emp VALUES (4, 'dan', NULL, NULL)")
        assert db.query("SELECT COUNT(salary) FROM emp").scalar() == 3

    def test_sum_avg_min_max(self, db):
        row = db.query(
            "SELECT SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp"
        ).rows[0]
        assert row == [270.0, 90.0, 80.0, 100.0]

    def test_group_by(self, db):
        result = db.query(
            "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept"
        )
        assert result.rows == [["eng", 2], ["ops", 1]]

    def test_having(self, db):
        result = db.query(
            "SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) > 1"
        )
        assert result.rows == [["eng"]]

    def test_aggregate_on_empty_input(self, db):
        result = db.query("SELECT COUNT(*), SUM(salary) FROM emp WHERE id > 99")
        assert result.rows == [[0, Null]]

    def test_count_distinct(self, db):
        assert db.query("SELECT COUNT(DISTINCT dept) FROM emp").scalar() == 2

    def test_aggregate_expression(self, db):
        assert db.query("SELECT MAX(salary) - MIN(salary) FROM emp").scalar() == 20.0

    def test_aggregate_outside_group_raises(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT id FROM emp WHERE SUM(salary) > 1")


class TestSubqueries:
    def test_scalar_subquery(self, db):
        result = db.query(
            "SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)"
        )
        assert result.rows == [["ann"]]

    def test_scalar_subquery_empty_is_null(self, db):
        assert db.query("SELECT (SELECT name FROM emp WHERE id = 99)").scalar() is Null

    def test_scalar_subquery_multi_row_raises(self, db):
        with pytest.raises(CardinalityError):
            db.query("SELECT (SELECT name FROM emp)")

    def test_correlated_subquery(self, db):
        result = db.query(
            "SELECT e.name FROM emp e WHERE e.salary >"
            " (SELECT AVG(salary) FROM emp x WHERE x.dept = e.dept)"
        )
        assert result.rows == [["ann"]]

    def test_exists(self, db):
        result = db.query(
            "SELECT d.code FROM dept d WHERE EXISTS"
            " (SELECT 1 FROM emp e WHERE e.dept = d.code)"
        )
        assert result.rows == [["eng"]]

    def test_not_exists(self, db):
        result = db.query(
            "SELECT d.code FROM dept d WHERE NOT EXISTS"
            " (SELECT 1 FROM emp e WHERE e.dept = d.code)"
        )
        assert result.rows == [["hr"]]

    def test_in_subquery(self, db):
        result = db.query(
            "SELECT name FROM emp WHERE dept IN (SELECT code FROM dept)"
        )
        assert len(result) == 2

    def test_not_in_subquery(self, db):
        result = db.query(
            "SELECT name FROM emp WHERE dept NOT IN (SELECT code FROM dept)"
        )
        assert result.rows == [["cat"]]

    def test_derived_table(self, db):
        result = db.query(
            "SELECT s.n FROM (SELECT COUNT(*) AS n FROM emp) AS s"
        )
        assert result.rows == [[3]]


class TestSetOperations:
    def test_union_dedupes(self, db):
        result = db.query(
            "SELECT dept FROM emp UNION SELECT code AS dept FROM dept ORDER BY dept"
        )
        assert [r[0] for r in result.rows] == ["eng", "hr", "ops"]

    def test_union_all_keeps_duplicates(self, db):
        result = db.query("SELECT dept FROM emp UNION ALL SELECT code FROM dept")
        assert len(result) == 5

    def test_except(self, db):
        result = db.query("SELECT code FROM dept EXCEPT SELECT dept FROM emp")
        assert result.rows == [["hr"]]

    def test_intersect(self, db):
        result = db.query("SELECT code FROM dept INTERSECT SELECT dept FROM emp")
        assert result.rows == [["eng"]]

    def test_mismatched_arity_raises(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT id, name FROM emp UNION SELECT code FROM dept")


class TestViews:
    def test_view_select(self, db):
        db.execute("CREATE VIEW rich AS (SELECT name FROM emp WHERE salary > 85)")
        result = db.query("SELECT * FROM rich ORDER BY name")
        assert result.rows == [["ann"], ["cat"]]

    def test_view_with_alias(self, db):
        db.execute("CREATE VIEW rich AS (SELECT name FROM emp WHERE salary > 85)")
        result = db.query("SELECT r.name FROM rich r WHERE r.name = 'cat'")
        assert result.rows == [["cat"]]

    def test_drop_view(self, db):
        db.execute("CREATE VIEW v AS (SELECT 1 AS one)")
        db.execute("DROP VIEW v")
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM v")

    def test_duplicate_view_raises(self, db):
        db.execute("CREATE VIEW v AS (SELECT 1 AS one)")
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW v AS (SELECT 2 AS two)")


class TestIndexedBinding:
    """The equality-probe optimization must never change results."""

    def test_join_matches_full_scan_semantics(self, db):
        indexed = db.query(
            "SELECT e.name FROM emp e, dept d WHERE e.dept = d.code ORDER BY e.name"
        )
        # same query phrased so no probe applies (inequality)
        full = db.query(
            "SELECT e.name FROM emp e, dept d"
            " WHERE NOT e.dept <> d.code ORDER BY e.name"
        )
        assert indexed.rows == full.rows

    def test_probe_on_literal(self, db):
        result = db.query("SELECT name FROM emp WHERE dept = 'ops'")
        assert result.rows == [["cat"]]

    def test_probe_with_null_literal_matches_nothing(self, db):
        db.execute("INSERT INTO emp VALUES (4, 'dan', NULL, 1.0)")
        assert len(db.query("SELECT name FROM emp WHERE dept = NULL")) == 0

    def test_bare_column_probe_from_parameter(self, db):
        db.execute(
            "CREATE FUNCTION pay_of (who CHAR(20)) RETURNS FLOAT READS SQL DATA"
            " LANGUAGE SQL BEGIN RETURN (SELECT salary FROM emp WHERE name = who); END"
        )
        assert db.query("SELECT pay_of('bob')").scalar() == 80.0

    def test_same_named_columns_across_tables_not_misprobed(self, db):
        db.execute("CREATE TABLE a1 (x INTEGER, y INTEGER)")
        db.execute("CREATE TABLE b1 (x INTEGER, y INTEGER)")
        db.execute("INSERT INTO a1 VALUES (1, 2)")
        db.execute("INSERT INTO b1 VALUES (1, 3)")
        # y is ambiguous-by-name: the probe must not bind a1.x = a1.y
        result = db.query("SELECT a1.y FROM a1, b1 WHERE a1.x = b1.x")
        assert result.rows == [[2]]


class TestDateQueries:
    def test_date_comparison(self, db):
        db.execute("CREATE TABLE ev (d DATE)")
        db.execute("INSERT INTO ev VALUES (DATE '2010-01-01')")
        db.execute("INSERT INTO ev VALUES (DATE '2011-01-01')")
        result = db.query("SELECT d FROM ev WHERE d < DATE '2010-06-01'")
        assert result.rows == [[Date.from_iso("2010-01-01")]]

    def test_date_arithmetic(self, db):
        assert db.query("SELECT DATE '2010-01-01' + 31").scalar() == Date.from_iso(
            "2010-02-01"
        )

    def test_date_difference(self, db):
        assert db.query(
            "SELECT DATE '2010-02-01' - DATE '2010-01-01'"
        ).scalar() == 31
