"""PSM interpreter tests: functions, procedures, control flow, cursors."""

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import (
    CardinalityError,
    CursorError,
    RoutineError,
)
from repro.sqlengine.values import Null


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE nums (n INTEGER)")
    for i in range(1, 6):
        db.execute(f"INSERT INTO nums VALUES ({i})")
    return db


def define(db, sql):
    db.execute(sql)


class TestFunctions:
    def test_return_expression(self, db):
        define(db, "CREATE FUNCTION inc (x INTEGER) RETURNS INTEGER"
                   " LANGUAGE SQL BEGIN RETURN x + 1; END")
        assert db.query("SELECT inc(4)").scalar() == 5

    def test_function_single_statement_body(self, db):
        define(db, "CREATE FUNCTION two () RETURNS INTEGER LANGUAGE SQL RETURN 2")
        assert db.query("SELECT two()").scalar() == 2

    def test_set_from_scalar_subquery(self, db):
        define(db, "CREATE FUNCTION top () RETURNS INTEGER READS SQL DATA"
                   " LANGUAGE SQL BEGIN DECLARE m INTEGER;"
                   " SET m = (SELECT MAX(n) FROM nums); RETURN m; END")
        assert db.query("SELECT top()").scalar() == 5

    def test_function_without_return_yields_null(self, db):
        define(db, "CREATE FUNCTION noop () RETURNS INTEGER LANGUAGE SQL"
                   " BEGIN DECLARE x INTEGER; SET x = 1; END")
        assert db.query("SELECT noop()").scalar() is Null

    def test_wrong_arity_raises(self, db):
        define(db, "CREATE FUNCTION inc (x INTEGER) RETURNS INTEGER"
                   " LANGUAGE SQL BEGIN RETURN x + 1; END")
        with pytest.raises(RoutineError):
            db.query("SELECT inc(1, 2)")

    def test_return_coerced_to_declared_type(self, db):
        define(db, "CREATE FUNCTION f () RETURNS INTEGER LANGUAGE SQL"
                   " BEGIN RETURN '7'; END")
        assert db.query("SELECT f()").scalar() == 7

    def test_nested_function_calls(self, db):
        define(db, "CREATE FUNCTION inc (x INTEGER) RETURNS INTEGER"
                   " LANGUAGE SQL BEGIN RETURN x + 1; END")
        define(db, "CREATE FUNCTION inc2 (x INTEGER) RETURNS INTEGER"
                   " LANGUAGE SQL BEGIN RETURN inc(inc(x)); END")
        assert db.query("SELECT inc2(1)").scalar() == 3

    def test_recursion_depth_guard(self, db):
        define(db, "CREATE FUNCTION boom (x INTEGER) RETURNS INTEGER"
                   " LANGUAGE SQL BEGIN RETURN boom(x + 1); END")
        with pytest.raises(RoutineError):
            db.query("SELECT boom(0)")

    def test_function_in_where_clause(self, db):
        define(db, "CREATE FUNCTION is_even (x INTEGER) RETURNS INTEGER"
                   " LANGUAGE SQL BEGIN RETURN MOD(x, 2); END")
        result = db.query("SELECT n FROM nums WHERE is_even(n) = 0 ORDER BY n")
        assert [r[0] for r in result.rows] == [2, 4]

    def test_routine_call_counter(self, db):
        define(db, "CREATE FUNCTION inc (x INTEGER) RETURNS INTEGER"
                   " LANGUAGE SQL BEGIN RETURN x + 1; END")
        before = db.stats.routine_calls.get("inc", 0)
        db.query("SELECT inc(n) FROM nums")
        assert db.stats.routine_calls["inc"] == before + 5


class TestControlFlow:
    def test_while_with_iterate_and_leave(self, db):
        define(db, """
        CREATE FUNCTION spin () RETURNS INTEGER LANGUAGE SQL
        BEGIN
          DECLARE i INTEGER DEFAULT 0;
          DECLARE acc INTEGER DEFAULT 0;
          lp: WHILE i < 100 DO
            SET i = i + 1;
            IF i = 3 THEN ITERATE lp; END IF;
            IF i = 6 THEN LEAVE lp; END IF;
            SET acc = acc + i;
          END WHILE lp;
          RETURN acc;
        END
        """)
        # 1+2+4+5 = 12 (3 skipped, stops at 6)
        assert db.query("SELECT spin()").scalar() == 12

    def test_repeat_runs_at_least_once(self, db):
        define(db, """
        CREATE FUNCTION once () RETURNS INTEGER LANGUAGE SQL
        BEGIN
          DECLARE i INTEGER DEFAULT 100;
          REPEAT SET i = i + 1; UNTIL i > 0 END REPEAT;
          RETURN i;
        END
        """)
        assert db.query("SELECT once()").scalar() == 101

    def test_for_loop_over_query(self, db):
        define(db, """
        CREATE FUNCTION total () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE acc INTEGER DEFAULT 0;
          FOR rec AS SELECT n FROM nums DO
            SET acc = acc + rec.n;
          END FOR;
          RETURN acc;
        END
        """)
        assert db.query("SELECT total()").scalar() == 15

    def test_for_loop_unqualified_field_access(self, db):
        define(db, """
        CREATE FUNCTION total2 () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE acc INTEGER DEFAULT 0;
          FOR rec AS SELECT n FROM nums DO
            SET acc = acc + n;
          END FOR;
          RETURN acc;
        END
        """)
        assert db.query("SELECT total2()").scalar() == 15

    def test_labeled_for_with_leave(self, db):
        define(db, """
        CREATE FUNCTION first_big () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE found INTEGER DEFAULT 0;
          f1: FOR rec AS SELECT n FROM nums ORDER BY n DO
            IF rec.n > 3 THEN
              SET found = rec.n;
              LEAVE f1;
            END IF;
          END FOR f1;
          RETURN found;
        END
        """)
        assert db.query("SELECT first_big()").scalar() == 4

    def test_case_statement_simple_form(self, db):
        define(db, """
        CREATE FUNCTION classify (x INTEGER) RETURNS CHAR(10) LANGUAGE SQL
        BEGIN
          DECLARE r CHAR(10);
          CASE x
            WHEN 1 THEN SET r = 'one';
            WHEN 2 THEN SET r = 'two';
            ELSE SET r = 'many';
          END CASE;
          RETURN r;
        END
        """)
        assert db.query("SELECT classify(2)").scalar() == "two"
        assert db.query("SELECT classify(9)").scalar() == "many"

    def test_nested_compound_scoping(self, db):
        define(db, """
        CREATE FUNCTION scoped () RETURNS INTEGER LANGUAGE SQL
        BEGIN
          DECLARE x INTEGER DEFAULT 1;
          BEGIN
            DECLARE x INTEGER DEFAULT 10;
            SET x = x + 1;
          END;
          RETURN x;
        END
        """)
        assert db.query("SELECT scoped()").scalar() == 1

    def test_select_into(self, db):
        define(db, """
        CREATE FUNCTION pick () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE v INTEGER;
          SELECT n INTO v FROM nums WHERE n = 3;
          RETURN v;
        END
        """)
        assert db.query("SELECT pick()").scalar() == 3

    def test_select_into_multi_row_raises(self, db):
        define(db, """
        CREATE FUNCTION bad () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE v INTEGER;
          SELECT n INTO v FROM nums;
          RETURN v;
        END
        """)
        with pytest.raises(CardinalityError):
            db.query("SELECT bad()")

    def test_row_set(self, db):
        define(db, """
        CREATE FUNCTION span () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE lo INTEGER;
          DECLARE hi INTEGER;
          SET (lo, hi) = (SELECT MIN(n), MAX(n) FROM nums);
          RETURN hi - lo;
        END
        """)
        assert db.query("SELECT span()").scalar() == 4


class TestProcedures:
    def test_out_parameter(self, db):
        define(db, "CREATE PROCEDURE give (OUT v INTEGER) LANGUAGE SQL"
                   " BEGIN SET v = 42; END")
        define(db, "CREATE FUNCTION wrap () RETURNS INTEGER LANGUAGE SQL"
                   " BEGIN DECLARE x INTEGER; CALL give(x); RETURN x; END")
        assert db.query("SELECT wrap()").scalar() == 42

    def test_inout_parameter(self, db):
        define(db, "CREATE PROCEDURE bump (INOUT v INTEGER) LANGUAGE SQL"
                   " BEGIN SET v = v + 1; END")
        define(db, "CREATE FUNCTION wrap () RETURNS INTEGER LANGUAGE SQL"
                   " BEGIN DECLARE x INTEGER DEFAULT 9; CALL bump(x); RETURN x; END")
        assert db.query("SELECT wrap()").scalar() == 10

    def test_out_argument_must_be_variable(self, db):
        define(db, "CREATE PROCEDURE give (OUT v INTEGER) LANGUAGE SQL"
                   " BEGIN SET v = 42; END")
        with pytest.raises(RoutineError):
            db.execute("CALL give(1)")

    def test_procedure_result_sets(self, db):
        define(db, "CREATE PROCEDURE listing () LANGUAGE SQL BEGIN"
                   " SELECT n FROM nums WHERE n < 3; SELECT n FROM nums WHERE n > 3; END")
        results = db.execute("CALL listing()")
        assert len(results) == 2
        assert [r[0] for r in results[0].rows] == [1, 2]

    def test_nested_call_result_sets_propagate(self, db):
        define(db, "CREATE PROCEDURE inner_p () LANGUAGE SQL BEGIN"
                   " SELECT COUNT(*) FROM nums; END")
        define(db, "CREATE PROCEDURE outer_p () LANGUAGE SQL BEGIN"
                   " CALL inner_p(); END")
        results = db.execute("CALL outer_p()")
        assert results[0].rows == [[5]]

    def test_call_function_raises(self, db):
        define(db, "CREATE FUNCTION f () RETURNS INTEGER LANGUAGE SQL RETURN 1")
        with pytest.raises(RoutineError):
            db.execute("CALL f()")

    def test_temp_table_in_procedure(self, db):
        define(db, """
        CREATE PROCEDURE via_temp () LANGUAGE SQL
        BEGIN
          CREATE TEMPORARY TABLE odds AS (SELECT n FROM nums WHERE MOD(n, 2) = 1);
          SELECT COUNT(*) FROM odds;
          DROP TABLE odds;
        END
        """)
        results = db.execute("CALL via_temp()")
        assert results[0].rows == [[3]]


class TestCursors:
    CURSOR_FN = """
    CREATE FUNCTION sum_via_cursor () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
    BEGIN
      DECLARE done INTEGER DEFAULT 0;
      DECLARE v INTEGER;
      DECLARE acc INTEGER DEFAULT 0;
      DECLARE c CURSOR FOR SELECT n FROM nums;
      DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
      OPEN c;
      w: WHILE done = 0 DO
        FETCH c INTO v;
        IF done = 0 THEN SET acc = acc + v; END IF;
      END WHILE w;
      CLOSE c;
      RETURN acc;
    END
    """

    def test_cursor_loop(self, db):
        define(db, self.CURSOR_FN)
        assert db.query("SELECT sum_via_cursor()").scalar() == 15

    def test_fetch_before_open_raises(self, db):
        define(db, """
        CREATE FUNCTION bad () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE v INTEGER;
          DECLARE c CURSOR FOR SELECT n FROM nums;
          FETCH c INTO v;
          RETURN v;
        END
        """)
        with pytest.raises(CursorError):
            db.query("SELECT bad()")

    def test_double_open_raises(self, db):
        define(db, """
        CREATE FUNCTION bad () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE v INTEGER;
          DECLARE c CURSOR FOR SELECT n FROM nums;
          OPEN c; OPEN c;
          RETURN 0;
        END
        """)
        with pytest.raises(CursorError):
            db.query("SELECT bad()")

    def test_close_unopened_raises(self, db):
        define(db, """
        CREATE FUNCTION bad () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE c CURSOR FOR SELECT n FROM nums;
          CLOSE c;
          RETURN 0;
        END
        """)
        with pytest.raises(CursorError):
            db.query("SELECT bad()")

    def test_cursor_sees_variables(self, db):
        define(db, """
        CREATE FUNCTION above (threshold INTEGER) RETURNS INTEGER
        READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE done INTEGER DEFAULT 0;
          DECLARE v INTEGER;
          DECLARE cnt INTEGER DEFAULT 0;
          DECLARE c CURSOR FOR SELECT n FROM nums WHERE n > threshold;
          DECLARE CONTINUE HANDLER FOR NOT FOUND SET done = 1;
          OPEN c;
          w: WHILE done = 0 DO
            FETCH c INTO v;
            IF done = 0 THEN SET cnt = cnt + 1; END IF;
          END WHILE w;
          CLOSE c;
          RETURN cnt;
        END
        """)
        assert db.query("SELECT above(3)").scalar() == 2


class TestTableFunctions:
    TF = """
    CREATE FUNCTION evens () RETURNS ROW(n INTEGER) ARRAY
    READS SQL DATA LANGUAGE SQL
    BEGIN
      DECLARE result ROW(n INTEGER) ARRAY;
      INSERT INTO TABLE result (SELECT n FROM nums WHERE MOD(n, 2) = 0);
      RETURN result;
    END
    """

    def test_table_function_in_from(self, db):
        define(db, self.TF)
        result = db.query("SELECT f.n FROM TABLE(evens()) AS f ORDER BY f.n")
        assert [r[0] for r in result.rows] == [2, 4]

    def test_lateral_argument(self, db):
        define(db, """
        CREATE FUNCTION upto (k INTEGER) RETURNS ROW(n INTEGER) ARRAY
        READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE result ROW(n INTEGER) ARRAY;
          INSERT INTO TABLE result (SELECT n FROM nums WHERE n <= k);
          RETURN result;
        END
        """)
        result = db.query(
            "SELECT x.n, f.n FROM nums x, TABLE(upto(x.n)) AS f WHERE x.n = 2"
            " ORDER BY f.n"
        )
        assert [r[1] for r in result.rows] == [1, 2]

    def test_scalar_function_in_from_raises(self, db):
        define(db, "CREATE FUNCTION one () RETURNS INTEGER LANGUAGE SQL RETURN 1")
        with pytest.raises(Exception):
            db.query("SELECT f.x FROM TABLE(one()) AS f")

    def test_variable_table_dml(self, db):
        define(db, """
        CREATE FUNCTION juggle () RETURNS INTEGER READS SQL DATA LANGUAGE SQL
        BEGIN
          DECLARE buf ROW(n INTEGER) ARRAY;
          INSERT INTO TABLE buf (SELECT n FROM nums);
          DELETE FROM TABLE buf WHERE n > 3;
          RETURN (SELECT COUNT(*) FROM buf);
        END
        """)
        assert db.query("SELECT juggle()").scalar() == 3
