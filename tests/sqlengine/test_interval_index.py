"""Interval index: structure correctness, version invalidation, and the
executor's predicate-shape probe (pruning must never change results)."""

import random

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import CatalogError
from repro.sqlengine.interval_index import IntervalIndex
from repro.sqlengine.storage import Column, Table
from repro.sqlengine.types import SqlType
from repro.sqlengine.values import Date, Null


def make_rows(rng, count, span=400, base=730000):
    """Random half-open [begin, end) rows plus a few NULL-bound ones."""
    rows = []
    for _ in range(count):
        begin = base + rng.randrange(span)
        end = begin + 1 + rng.randrange(60)
        rows.append([Date(begin), Date(end)])
    rows.append([Null, Date(base + 10)])
    rows.append([Date(base + 20), Null])
    rows.append([Null, Null])
    rng.shuffle(rows)
    return rows


def brute_search(rows, begin_max, end_min):
    return [
        row
        for row in rows
        if isinstance(row[0], Date)
        and isinstance(row[1], Date)
        and row[0].ordinal <= begin_max
        and row[1].ordinal >= end_min
    ]


class TestIntervalIndex:
    def test_search_matches_brute_force(self):
        rng = random.Random(7)
        rows = make_rows(rng, 200)
        index = IntervalIndex(rows, 0, 1)
        for _ in range(300):
            begin_max = 730000 + rng.randrange(500) - 50
            end_min = 730000 + rng.randrange(500) - 50
            assert index.search(begin_max, end_min) == brute_search(
                rows, begin_max, end_min
            )

    def test_results_in_table_position_order(self):
        rng = random.Random(11)
        rows = make_rows(rng, 120)
        index = IntervalIndex(rows, 0, 1)
        hits = index.search(730000 + 300, 730000 + 100)
        positions = [next(i for i, r in enumerate(rows) if r is hit) for hit in hits]
        assert positions == sorted(positions)

    def test_stab(self):
        rows = [
            [Date(100), Date(200)],
            [Date(150), Date(160)],
            [Date(200), Date(300)],
            [Null, Date(500)],
        ]
        index = IntervalIndex(rows, 0, 1)
        # half-open semantics: alive at p iff begin <= p < end
        assert index.stab(150) == [rows[0], rows[1]]
        assert index.stab(160) == [rows[0]]
        assert index.stab(199) == [rows[0]]
        assert index.stab(200) == [rows[2]]
        assert index.stab(99) == []

    def test_overlaps(self):
        rows = [
            [Date(100), Date(200)],
            [Date(200), Date(300)],
            [Date(300), Date(400)],
        ]
        index = IntervalIndex(rows, 0, 1)
        assert index.overlaps(150, 250) == [rows[0], rows[1]]
        assert index.overlaps(200, 300) == [rows[1]]
        assert index.overlaps(400, 500) == []
        assert index.overlaps(1, 1000) == rows

    def test_empty_table(self):
        index = IntervalIndex([], 0, 1)
        assert index.search(10**6, 0) == []

    def test_all_null_bounds(self):
        index = IntervalIndex([[Null, Null], [Null, Date(5)]], 0, 1)
        assert index.entry_count == 0
        assert index.search(10**6, 0) == []

    def test_null_bounded_rows_never_indexed(self):
        """The documented contract: a row with *any* non-Date bound is
        excluded from the index — an all-covering probe returns only the
        fully Date-bounded rows (SEQ-SET's alignment and the executor's
        probe both rely on this matching NULL-comparison semantics)."""
        rows = [
            [Date(100), Date(200)],
            [Null, Date(150)],
            [Date(120), Null],
            [Null, Null],
            [Date(300), Date(400)],
        ]
        index = IntervalIndex(rows, 0, 1)
        assert index.entry_count == 2
        assert index.total_rows == 5
        assert index.search(10**6, 0) == [rows[0], rows[4]]
        assert index.search_positions(10**6, 0) == [0, 4]


def interval_table(name="t"):
    table = Table(
        name,
        [
            Column("id", SqlType("INTEGER")),
            Column("begin_time", SqlType("DATE")),
            Column("end_time", SqlType("DATE")),
        ],
    )
    table.declare_interval("begin_time", "end_time")
    return table


class TestTableIntegration:
    def test_declare_interval_validates_columns(self):
        table = interval_table()
        with pytest.raises(CatalogError):
            table.declare_interval("begin_time", "no_such_column")

    def test_declare_interval_idempotent(self):
        table = interval_table()
        table.declare_interval("BEGIN_TIME", "END_TIME")
        assert table.interval_pairs == [("begin_time", "end_time")]

    def test_clone_empty_copies_pairs(self):
        clone = interval_table().clone_empty("u")
        assert clone.interval_pairs == [("begin_time", "end_time")]

    def test_index_cached_until_mutation(self):
        table = interval_table()
        table.insert([1, Date(100), Date(200)])
        first = table.interval_index(1, 2)
        assert table.interval_index(1, 2) is first
        table.insert([2, Date(150), Date(250)])
        rebuilt = table.interval_index(1, 2)
        assert rebuilt is not first
        assert len(rebuilt.stab(160)) == 2

    def test_change_points_cached_and_one_sided(self):
        table = interval_table()
        table.insert([1, Date(100), Date(200)])
        table.rows.append([2, Date(300), Null])  # raw: NULL end survives
        table.version += 1
        points = table.change_points(1, 2)
        assert points == {100, 200, 300}
        assert table.change_points(1, 2) is points
        table.insert([3, Date(400), Date(500)])
        assert table.change_points(1, 2) == {100, 200, 300, 400, 500}


class TestExecutorProbe:
    @pytest.fixture
    def db(self):
        db = Database()
        db.execute(
            "CREATE TABLE history (id INTEGER, amount FLOAT,"
            " begin_time DATE, end_time DATE)"
        )
        rng = random.Random(3)
        rows = []
        for i in range(80):
            begin = 733000 + rng.randrange(300)
            end = begin + 1 + rng.randrange(40)
            rows.append((i, float(i), Date(begin), Date(end)))
        for row in rows:
            db.execute(
                "INSERT INTO history VALUES"
                f" ({row[0]}, {row[1]}, DATE '{row[2].to_iso()}', DATE '{row[3].to_iso()}')"
            )
        db.catalog.get_table("history").declare_interval("begin_time", "end_time")
        return db

    STAB = (
        "SELECT h.id FROM history h"
        " WHERE h.begin_time <= DATE '{p}' AND DATE '{p}' < h.end_time"
    )

    def test_probe_prunes_and_preserves_results(self, db):
        point = Date(733150).to_iso()
        scanned_before = db.obs.value("engine.rows_scanned")
        indexed = db.query(self.STAB.format(p=point))
        scanned_indexed = db.obs.value("engine.rows_scanned") - scanned_before
        assert db.obs.value("engine.interval_index_hits") == 1
        assert db.obs.value("engine.interval_rows_pruned") > 0

        db.interval_indexing_enabled = False
        scanned_before = db.obs.value("engine.rows_scanned")
        linear = db.query(self.STAB.format(p=point))
        scanned_linear = db.obs.value("engine.rows_scanned") - scanned_before

        assert indexed.rows == linear.rows  # row-for-row, same order
        assert scanned_indexed < scanned_linear
        assert db.obs.value("engine.interval_index_hits") == 1  # unchanged

    def test_probe_row_order_matches_linear(self, db):
        query = (
            "SELECT h.id FROM history h"
            " WHERE h.begin_time < DATE '2008-06-01'"
            " AND DATE '2008-01-01' <= h.end_time"
        )
        indexed = db.query(query)
        db.interval_indexing_enabled = False
        assert db.query(query).rows == indexed.rows

    def test_hash_probe_takes_precedence(self, db):
        db.query(
            "SELECT h.amount FROM history h WHERE h.id = 7"
            " AND h.begin_time <= DATE '2009-01-01'"
            " AND DATE '2009-01-01' < h.end_time"
        )
        assert db.obs.value("engine.interval_index_hits") == 0

    def test_null_bound_yields_empty_scan(self, db):
        """A bound evaluating to NULL can match no row: empty candidates."""
        db.execute("CREATE TABLE params (p DATE)")
        db.execute("INSERT INTO params VALUES (NULL)")
        result = db.query(
            "SELECT h.id FROM params x, history h"
            " WHERE h.begin_time <= x.p AND x.p < h.end_time"
        )
        assert result.rows == []
        assert db.obs.value("engine.interval_index_hits") == 1
        assert db.obs.value("engine.interval_rows_pruned") == 80

    def test_probe_survives_rollback_antialiasing(self, db):
        """A rolled-back mutation restores the version counter; indexes
        built inside the window must not revalidate against it."""
        table = db.catalog.get_table("history")
        point = Date(733150).to_iso()
        db.execute("BEGIN")
        db.execute(
            "INSERT INTO history VALUES"
            " (500, 1.0, DATE '2008-03-01', DATE '2008-12-01')"
        )
        with_insert = db.query(self.STAB.format(p=point))  # builds index
        db.execute("ROLLBACK")
        after = db.query(self.STAB.format(p=point))
        db.interval_indexing_enabled = False
        linear = db.query(self.STAB.format(p=point))
        assert after.rows == linear.rows
        assert [500] in with_insert.rows
        assert [500] not in after.rows
