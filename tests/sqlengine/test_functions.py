"""Built-in function module tests (direct API level)."""

import pytest
from hypothesis import given, strategies as st

from repro.sqlengine import functions as fn
from repro.sqlengine.values import Date, Null


class TestRegistry:
    def test_aggregates_recognised(self):
        for name in ("COUNT", "SUM", "AVG", "MIN", "MAX", "count"):
            assert fn.is_aggregate(name)

    def test_scalar_builtins_recognised(self):
        for name in ("UPPER", "COALESCE", "FIRST_INSTANCE", "LAST_INSTANCE"):
            assert fn.is_scalar_builtin(name)

    def test_unknown_not_recognised(self):
        assert not fn.is_aggregate("UPPER")
        assert not fn.is_scalar_builtin("SUM")


class TestAggregates:
    def test_count_star_counts_everything(self):
        assert fn.evaluate_aggregate("COUNT", [1, Null, 3], star=True) == 3

    def test_count_skips_nulls(self):
        assert fn.evaluate_aggregate("COUNT", [1, Null, 3]) == 2

    def test_sum_of_empty_is_null(self):
        assert fn.evaluate_aggregate("SUM", []) is Null
        assert fn.evaluate_aggregate("SUM", [Null, Null]) is Null

    def test_avg(self):
        assert fn.evaluate_aggregate("AVG", [2, 4, Null]) == 3

    def test_min_max_on_dates(self):
        dates = [Date.from_iso("2010-06-01"), Date.from_iso("2010-01-01")]
        assert fn.evaluate_aggregate("MIN", dates) == Date.from_iso("2010-01-01")
        assert fn.evaluate_aggregate("MAX", dates) == Date.from_iso("2010-06-01")

    def test_distinct_sum(self):
        assert fn.evaluate_aggregate("SUM", [1, 1, 2], distinct=True) == 3

    def test_min_max_strings(self):
        assert fn.evaluate_aggregate("MIN", ["b", "a"]) == "a"
        assert fn.evaluate_aggregate("MAX", ["b", "a"]) == "b"

    @given(st.lists(st.integers(), min_size=1))
    def test_sum_matches_python(self, xs):
        assert fn.evaluate_aggregate("SUM", xs) == sum(xs)

    @given(st.lists(st.integers(), min_size=1))
    def test_min_max_match_python(self, xs):
        assert fn.evaluate_aggregate("MIN", xs) == min(xs)
        assert fn.evaluate_aggregate("MAX", xs) == max(xs)


class TestInstanceFunctions:
    """FIRST_INSTANCE / LAST_INSTANCE (paper Fig. 4)."""

    def test_first_is_earlier(self):
        a, b = Date.from_iso("2010-01-01"), Date.from_iso("2010-06-01")
        assert fn.call_scalar_builtin("FIRST_INSTANCE", [a, b]) is a
        assert fn.call_scalar_builtin("FIRST_INSTANCE", [b, a]) is a

    def test_last_is_later(self):
        a, b = Date.from_iso("2010-01-01"), Date.from_iso("2010-06-01")
        assert fn.call_scalar_builtin("LAST_INSTANCE", [a, b]) is b

    def test_equal_inputs(self):
        a = Date.from_iso("2010-01-01")
        assert fn.call_scalar_builtin("FIRST_INSTANCE", [a, a]) is a

    @given(st.integers(min_value=1, max_value=3_000_000),
           st.integers(min_value=1, max_value=3_000_000))
    def test_instance_functions_bound_interval(self, x, y):
        a, b = Date(x), Date(y)
        first = fn.call_scalar_builtin("FIRST_INSTANCE", [a, b])
        last = fn.call_scalar_builtin("LAST_INSTANCE", [a, b])
        assert first.ordinal == min(x, y)
        assert last.ordinal == max(x, y)

    def test_works_on_numbers_too(self):
        assert fn.call_scalar_builtin("LEAST", [3, 1]) == 1
        assert fn.call_scalar_builtin("GREATEST", [3, 1]) == 3
