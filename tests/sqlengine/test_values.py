"""Value model tests: NULL, three-valued logic, dates, ordering."""

import pytest
from hypothesis import given, strategies as st

from repro.sqlengine.errors import TypeError_
from repro.sqlengine.values import (
    Date,
    Null,
    Row,
    Unknown,
    compare,
    equals,
    is_null,
    logic_and,
    logic_not,
    logic_or,
    sort_key,
    truth,
)


class TestNull:
    def test_null_is_singleton(self):
        from repro.sqlengine.values import _NullType

        assert _NullType() is Null

    def test_null_is_falsy(self):
        assert not Null

    def test_is_null(self):
        assert is_null(Null)
        assert not is_null(0)
        assert not is_null("")

    def test_repr(self):
        assert repr(Null) == "NULL"


class TestCompare:
    def test_numbers(self):
        assert compare(1, 2) == -1
        assert compare(2, 2) == 0
        assert compare(3, 2) == 1

    def test_int_float_mix(self):
        assert compare(1, 1.0) == 0
        assert compare(1.5, 1) == 1

    def test_bool_as_number(self):
        assert compare(True, 1) == 0
        assert compare(False, 1) == -1

    def test_strings_ignore_trailing_blanks(self):
        assert compare("abc  ", "abc") == 0

    def test_strings_ordered(self):
        assert compare("apple", "banana") == -1

    def test_null_propagates(self):
        assert compare(Null, 1) is Unknown
        assert compare("x", Null) is Unknown
        assert compare(Null, Null) is Unknown

    def test_dates(self):
        a = Date.from_iso("2010-01-01")
        b = Date.from_iso("2010-06-01")
        assert compare(a, b) == -1
        assert compare(b, b) == 0

    def test_cross_type_raises(self):
        with pytest.raises(TypeError_):
            compare(1, "one")

    def test_equals(self):
        assert equals(2, 2) is True
        assert equals(2, 3) is False
        assert equals(Null, 3) is Unknown


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert logic_and(True, True) is True
        assert logic_and(True, False) is False
        assert logic_and(False, Unknown) is False
        assert logic_and(True, Unknown) is Unknown
        assert logic_and(Unknown, Unknown) is Unknown

    def test_or_truth_table(self):
        assert logic_or(False, False) is False
        assert logic_or(False, True) is True
        assert logic_or(True, Unknown) is True
        assert logic_or(False, Unknown) is Unknown

    def test_not(self):
        assert logic_not(True) is False
        assert logic_not(False) is True
        assert logic_not(Unknown) is Unknown
        assert logic_not(Null) is Unknown

    def test_truth_collapses_unknown(self):
        assert truth(True)
        assert not truth(False)
        assert not truth(Unknown)
        assert not truth(Null)

    @given(st.sampled_from([True, False, None]), st.sampled_from([True, False, None]))
    def test_and_commutative(self, a, b):
        left = Unknown if a is None else a
        right = Unknown if b is None else b
        assert logic_and(left, right) is logic_and(right, left)

    @given(st.sampled_from([True, False, None]), st.sampled_from([True, False, None]))
    def test_de_morgan(self, a, b):
        left = Unknown if a is None else a
        right = Unknown if b is None else b
        assert logic_not(logic_and(left, right)) is logic_or(
            logic_not(left), logic_not(right)
        )


class TestDate:
    def test_iso_round_trip(self):
        assert Date.from_iso("2010-06-15").to_iso() == "2010-06-15"

    def test_from_ymd(self):
        assert Date.from_ymd(2010, 6, 15) == Date.from_iso("2010-06-15")

    def test_invalid_iso_raises(self):
        with pytest.raises(TypeError_):
            Date.from_iso("not-a-date")

    def test_plus_days(self):
        assert Date.from_iso("2010-12-31").plus_days(1).to_iso() == "2011-01-01"

    def test_ordering(self):
        assert Date.from_iso("2010-01-01") < Date.from_iso("2010-01-02")

    def test_max_is_year_9999(self):
        assert Date(Date.MAX_ORDINAL).to_iso() == "9999-12-31"

    def test_hashable(self):
        assert len({Date.from_iso("2010-01-01"), Date.from_iso("2010-01-01")}) == 1

    def test_non_int_ordinal_raises(self):
        with pytest.raises(TypeError_):
            Date("2010-01-01")

    @given(st.integers(min_value=Date.MIN_ORDINAL, max_value=Date.MAX_ORDINAL))
    def test_ordinal_round_trip(self, ordinal):
        assert Date.from_iso(Date(ordinal).to_iso()).ordinal == ordinal


class TestRow:
    def test_access_by_index_and_name(self):
        row = Row(["a", "B"], [1, 2])
        assert row[0] == 1
        assert row["b"] == 2  # case-insensitive

    def test_missing_column_raises(self):
        with pytest.raises(KeyError):
            Row(["a"], [1])["b"]

    def test_length_mismatch_raises(self):
        with pytest.raises(TypeError_):
            Row(["a", "b"], [1])

    def test_equality_on_values(self):
        assert Row(["a"], [1]) == Row(["x"], [1])

    def test_as_dict(self):
        assert Row(["a", "b"], [1, 2]).as_dict() == {"a": 1, "b": 2}


class TestSortKey:
    def test_nulls_sort_first(self):
        values = [3, Null, 1]
        assert sorted(values, key=sort_key)[0] is Null

    def test_mixed_numbers(self):
        assert sorted([2.5, 1, 3], key=sort_key) == [1, 2.5, 3]

    def test_dates_and_strings_separate(self):
        # no exception: different type classes get disjoint key spaces
        data = [Date.from_iso("2010-01-01"), "abc", 5, Null]
        assert sorted(data, key=sort_key)[0] is Null

    @given(st.lists(st.one_of(st.integers(), st.floats(allow_nan=False))))
    def test_numeric_sort_matches_python(self, xs):
        assert sorted(xs, key=sort_key) == sorted(xs)
