"""The statement-plan cache: reuse, invalidation, and the ablation switch.

Plans are keyed by AST identity, so reuse requires executing the *same*
parsed statement object repeatedly — exactly what routine bodies and the
stratum's per-constant-period loop do.
"""

import pytest

from repro.sqlengine import Database
from repro.sqlengine.parser import parse_statement


@pytest.fixture
def db() -> Database:
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER, name VARCHAR(10))")
    db.execute("INSERT INTO t VALUES (1, 'a')")
    db.execute("INSERT INTO t VALUES (2, 'b')")
    return db


def snapshot_diff(db, run):
    before = db.stats.snapshot()
    run()
    after = db.stats.snapshot()
    return {k: after[k] - before[k] for k in ("plans_compiled", "plan_cache_hits")}


class TestReuse:
    def test_repeated_execution_hits_cache(self, db):
        stmt = parse_statement("SELECT name FROM t WHERE id = 1")
        results = []
        diff = snapshot_diff(
            db, lambda: results.extend(db.execute_ast(stmt).rows for _ in range(3))
        )
        assert diff["plans_compiled"] == 1
        assert diff["plan_cache_hits"] == 2
        assert results == [[["a"]], [["a"]], [["a"]]]

    def test_snapshot_exposes_counters(self, db):
        snap = db.stats.snapshot()
        for key in (
            "plans_compiled",
            "plan_cache_hits",
            "transforms",
            "transform_cache_hits",
        ):
            assert key in snap

    def test_dml_plans_are_cached(self, db):
        stmt = parse_statement("UPDATE t SET name = 'x' WHERE id = 2")
        diff = snapshot_diff(
            db, lambda: [db.execute_ast(stmt) for _ in range(2)]
        )
        assert diff["plans_compiled"] == 1
        assert diff["plan_cache_hits"] == 1
        assert db.execute("SELECT name FROM t WHERE id = 2").rows == [["x"]]


class TestInvalidation:
    def test_drop_create_table_recompiles(self, db):
        stmt = parse_statement("SELECT name FROM t ORDER BY id")
        assert db.execute_ast(stmt).rows == [["a"], ["b"]]
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (id INTEGER, name VARCHAR(10))")
        db.execute("INSERT INTO t VALUES (9, 'z')")
        diff = snapshot_diff(db, lambda: db.execute_ast(stmt))
        assert diff["plans_compiled"] == 1  # recompiled, not served stale
        assert db.execute_ast(stmt).rows == [["z"]]

    def test_column_change_never_serves_stale_rows(self, db):
        stmt = parse_statement("SELECT * FROM t WHERE id = 1")
        assert db.execute_ast(stmt).rows == [[1, "a"]]
        db.execute("DROP TABLE t")
        db.execute(
            "CREATE TABLE t (id INTEGER, name VARCHAR(10), extra INTEGER)"
        )
        db.execute("INSERT INTO t VALUES (1, 'a', 7)")
        assert db.execute_ast(stmt).rows == [[1, "a", 7]]

    def test_routine_redefinition_recompiles(self, db):
        db.execute(
            "CREATE FUNCTION f (x INTEGER) RETURNS INTEGER LANGUAGE SQL"
            " BEGIN RETURN x + 1; END"
        )
        stmt = parse_statement("SELECT f(id) FROM t ORDER BY id")
        assert db.execute_ast(stmt).rows == [[2], [3]]
        db.execute("DROP FUNCTION f")
        db.execute(
            "CREATE FUNCTION f (x INTEGER) RETURNS INTEGER LANGUAGE SQL"
            " BEGIN RETURN x * 10; END"
        )
        diff = snapshot_diff(db, lambda: db.execute_ast(stmt))
        assert diff["plans_compiled"] == 1
        assert db.execute_ast(stmt).rows == [[10], [20]]

    def test_view_change_invalidates(self, db):
        db.execute("CREATE VIEW v AS (SELECT id FROM t WHERE id = 1)")
        stmt = parse_statement("SELECT id FROM v")
        assert db.execute_ast(stmt).rows == [[1]]
        db.execute("DROP VIEW v")
        db.execute("CREATE VIEW v AS (SELECT id FROM t WHERE id = 2)")
        assert db.execute_ast(stmt).rows == [[2]]


class TestAblationSwitch:
    def test_disabled_compiles_nothing(self, db):
        db.plan_caching_enabled = False
        stmt = parse_statement("SELECT name FROM t WHERE id = 1")
        diff = snapshot_diff(
            db, lambda: [db.execute_ast(stmt) for _ in range(3)]
        )
        assert diff["plans_compiled"] == 0
        assert diff["plan_cache_hits"] == 0
        assert db.execute_ast(stmt).rows == [["a"]]

    def test_disabled_matches_enabled_results(self, db):
        sql = "SELECT t1.name FROM t AS t1, t AS t2 WHERE t1.id = t2.id ORDER BY 1"
        enabled = db.execute(sql).rows
        db.plan_caching_enabled = False
        db.plan_cache.clear()
        db.expr_cache.clear()
        assert db.execute(sql).rows == enabled
