"""Lexer unit tests."""

import pytest

from repro.sqlengine.errors import LexError
from repro.sqlengine.lexer import tokenize
from repro.sqlengine.tokens import TokenKind


def kinds(sql):
    return [t.kind for t in tokenize(sql)[:-1]]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


def test_empty_input_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_keywords_are_case_insensitive():
    assert values("select SELECT SeLeCt") == ["SELECT"] * 3


def test_identifier_preserves_case():
    assert values("myTable") == ["myTable"]
    assert kinds("myTable") == [TokenKind.IDENT]


def test_identifier_with_underscore_and_digits():
    assert values("begin_time t2 _x") == ["begin_time", "t2", "_x"]


def test_integer_literal():
    tokens = tokenize("42")
    assert tokens[0].kind is TokenKind.NUMBER
    assert tokens[0].value == "42"


def test_decimal_literal():
    assert values("3.14") == ["3.14"]


def test_scientific_notation():
    assert values("1e5 2.5E-3") == ["1e5", "2.5E-3"]


def test_string_literal():
    tokens = tokenize("'hello'")
    assert tokens[0].kind is TokenKind.STRING
    assert tokens[0].value == "hello"


def test_string_with_escaped_quote():
    tokens = tokenize("'it''s'")
    assert tokens[0].value == "it's"


def test_empty_string_literal():
    assert tokenize("''")[0].value == ""


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize("'oops")


def test_line_comment_is_skipped():
    assert values("SELECT -- comment here\n 1") == ["SELECT", "1"]


def test_block_comment_is_skipped():
    assert values("SELECT /* multi\nline */ 1") == ["SELECT", "1"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_two_char_operators():
    assert values("<= >= <> != ||") == ["<=", ">=", "<>", "!=", "||"]


def test_single_char_operators():
    assert values("= < > + - * /") == ["=", "<", ">", "+", "-", "*", "/"]


def test_punctuation():
    assert values("( ) , ; . [ ]") == ["(", ")", ",", ";", ".", "[", "]"]


def test_label_colon():
    assert values("lp: WHILE") == ["lp", ":", "WHILE"]


def test_delimited_identifier():
    tokens = tokenize('"Select"')
    assert tokens[0].kind is TokenKind.IDENT
    assert tokens[0].value == "Select"


def test_unterminated_delimited_identifier_raises():
    with pytest.raises(LexError):
        tokenize('"open')


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("SELECT @")


def test_line_numbers_advance():
    tokens = tokenize("SELECT\n\n1")
    assert tokens[0].line == 1
    assert tokens[1].line == 3


def test_full_statement_token_stream():
    sql = "SELECT i.title FROM item i WHERE i.price >= 10.5"
    assert values(sql) == [
        "SELECT", "i", ".", "title", "FROM", "item", "i", "WHERE",
        "i", ".", "price", ">=", "10.5",
    ]


def test_validtime_is_a_keyword():
    tokens = tokenize("VALIDTIME NONSEQUENCED")
    assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])


def test_temporal_bracket_syntax_lexes():
    sql = "VALIDTIME [DATE '2010-01-01', DATE '2011-01-01']"
    assert "[" in values(sql) and "]" in values(sql)


def test_is_keyword_helper():
    token = tokenize("SELECT")[0]
    assert token.is_keyword("SELECT", "INSERT")
    assert not token.is_keyword("INSERT")


def test_number_then_dot_identifier():
    # "1.e" should not absorb the identifier
    assert values("x.y") == ["x", ".", "y"]
