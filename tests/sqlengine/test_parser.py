"""Parser unit tests: statements, expressions, PSM bodies."""

import pytest

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import ParseError
from repro.sqlengine.parser import parse_expression, parse_script, parse_statement
from repro.sqlengine.values import Date, Null


class TestSelect:
    def test_simple_select(self):
        stmt = parse_statement("SELECT a FROM t")
        assert isinstance(stmt, ast.Select)
        assert stmt.items[0].expr.name == "a"
        assert stmt.from_items[0].name == "t"

    def test_select_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert stmt.items[0].is_star

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert stmt.items[0].star_qualifier == "t"

    def test_select_with_alias(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_table_alias_forms(self):
        stmt = parse_statement("SELECT 1 FROM t AS x, u y")
        assert stmt.from_items[0].alias == "x"
        assert stmt.from_items[1].alias == "y"

    def test_where_group_having_order(self):
        stmt = parse_statement(
            "SELECT a, COUNT(*) FROM t WHERE b > 1 GROUP BY a"
            " HAVING COUNT(*) > 2 ORDER BY a DESC"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending

    def test_limit(self):
        assert parse_statement("SELECT a FROM t LIMIT 5").limit == 5

    def test_join_on(self):
        stmt = parse_statement("SELECT 1 FROM a JOIN b ON a.x = b.x")
        join = stmt.from_items[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "INNER"

    def test_left_join(self):
        stmt = parse_statement("SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert stmt.from_items[0].kind == "LEFT"

    def test_cross_join(self):
        stmt = parse_statement("SELECT 1 FROM a CROSS JOIN b")
        assert stmt.from_items[0].kind == "CROSS"
        assert stmt.from_items[0].condition is None

    def test_subquery_in_from(self):
        stmt = parse_statement("SELECT 1 FROM (SELECT a FROM t) AS s")
        assert isinstance(stmt.from_items[0], ast.SubqueryRef)
        assert stmt.from_items[0].alias == "s"

    def test_table_function_in_from(self):
        stmt = parse_statement("SELECT 1 FROM TABLE(f(1, 'x')) AS g")
        ref = stmt.from_items[0]
        assert isinstance(ref, ast.TableFunctionRef)
        assert ref.call.name == "f"
        assert ref.alias == "g"

    def test_union_chain(self):
        stmt = parse_statement("SELECT a FROM t UNION SELECT a FROM u UNION ALL SELECT a FROM v")
        assert stmt.set_op == "UNION"
        assert stmt.set_rhs.set_op == "UNION ALL"

    def test_order_by_position(self):
        stmt = parse_statement("SELECT a, b FROM t ORDER BY 2")
        assert isinstance(stmt.order_by[0].expr, ast.Literal)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.Parenthesized)

    def test_and_or_precedence(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "NOT"

    def test_comparison_normalizes_bang_equals(self):
        assert parse_expression("a != b").op == "<>"

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 5")
        assert isinstance(expr, ast.BetweenPredicate)

    def test_not_between(self):
        assert parse_expression("a NOT BETWEEN 1 AND 5").negated

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InPredicate)
        assert len(expr.items) == 3

    def test_in_subquery(self):
        expr = parse_expression("a IN (SELECT b FROM t)")
        assert expr.subquery is not None

    def test_exists(self):
        expr = parse_expression("EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.ExistsPredicate)

    def test_not_exists(self):
        expr = parse_expression("NOT EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.UnaryOp)

    def test_like(self):
        expr = parse_expression("a LIKE '%x%'")
        assert isinstance(expr, ast.LikePredicate)

    def test_is_null_and_is_not_null(self):
        assert not parse_expression("a IS NULL").negated
        assert parse_expression("a IS NOT NULL").negated

    def test_case_searched(self):
        expr = parse_expression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, ast.CaseExpr)
        assert expr.operand is None

    def test_case_simple(self):
        expr = parse_expression("CASE a WHEN 1 THEN 'x' END")
        assert expr.operand is not None

    def test_cast(self):
        expr = parse_expression("CAST(a AS INTEGER)")
        assert isinstance(expr, ast.Cast)
        assert expr.target.name == "INTEGER"

    def test_date_literal(self):
        expr = parse_expression("DATE '2010-06-01'")
        assert expr.value == Date.from_iso("2010-06-01")

    def test_null_true_false(self):
        assert parse_expression("NULL").value is Null
        assert parse_expression("TRUE").value is True
        assert parse_expression("FALSE").value is False

    def test_concat(self):
        assert parse_expression("a || b").op == "||"

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT a FROM t)")
        assert isinstance(expr, ast.ScalarSubquery)

    def test_function_call(self):
        expr = parse_expression("f(1, a)")
        assert isinstance(expr, ast.FunctionCall)
        assert len(expr.args) == 2

    def test_count_star(self):
        assert parse_expression("COUNT(*)").star

    def test_count_distinct(self):
        assert parse_expression("COUNT(DISTINCT a)").distinct

    def test_unary_minus(self):
        expr = parse_expression("-5")
        assert isinstance(expr, ast.UnaryOp)

    def test_current_date(self):
        expr = parse_expression("CURRENT_DATE")
        assert expr.name == "CURRENT_DATE"


class TestDml:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.values) == 2

    def test_insert_with_columns(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ["a", "b"]

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a FROM u")
        assert stmt.select is not None

    def test_insert_into_table_keyword(self):
        stmt = parse_statement("INSERT INTO TABLE v (SELECT a FROM u)")
        assert stmt.table == "v"

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)


class TestDdl:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INTEGER NOT NULL, b CHAR(10), c DATE,"
            " PRIMARY KEY (a))"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].not_null
        assert stmt.primary_key == ["a"]

    def test_create_temporary_table_as(self):
        stmt = parse_statement("CREATE TEMPORARY TABLE t AS (SELECT a FROM u)")
        assert stmt.temporary
        assert stmt.as_select is not None

    def test_create_view(self):
        stmt = parse_statement("CREATE VIEW v AS (SELECT a FROM t)")
        assert isinstance(stmt, ast.CreateView)

    def test_drop_statements(self):
        assert isinstance(parse_statement("DROP TABLE t"), ast.DropTable)
        assert isinstance(parse_statement("DROP VIEW v"), ast.DropView)
        assert parse_statement("DROP FUNCTION f").kind == "FUNCTION"

    def test_alter_add_validtime(self):
        stmt = parse_statement("ALTER TABLE t ADD VALIDTIME")
        assert isinstance(stmt, ast.AlterTable)

    def test_type_variants(self):
        stmt = parse_statement(
            "CREATE TABLE t (a DECIMAL(8, 2), b VARCHAR(30), c DOUBLE PRECISION,"
            " d BOOLEAN, e CHARACTER VARYING(5))"
        )
        assert stmt.columns[0].type.precision == 8
        assert stmt.columns[4].type.name == "VARCHAR"


class TestPsm:
    def test_create_function(self):
        stmt = parse_statement(
            "CREATE FUNCTION f (x INTEGER) RETURNS INTEGER READS SQL DATA"
            " LANGUAGE SQL BEGIN RETURN x + 1; END"
        )
        assert isinstance(stmt, ast.CreateFunction)
        assert stmt.reads_sql_data
        assert isinstance(stmt.body, ast.Compound)

    def test_create_function_row_array(self):
        stmt = parse_statement(
            "CREATE FUNCTION f () RETURNS ROW(a INTEGER, b DATE) ARRAY"
            " LANGUAGE SQL BEGIN RETURN NULL; END"
        )
        assert isinstance(stmt.returns, ast.RowArrayType)
        assert stmt.returns.column_names == ["a", "b"]

    def test_create_procedure_with_modes(self):
        stmt = parse_statement(
            "CREATE PROCEDURE p (IN a INTEGER, OUT b INTEGER, INOUT c INTEGER)"
            " LANGUAGE SQL BEGIN SET b = a; END"
        )
        modes = [param.mode for param in stmt.params]
        assert modes == ["IN", "OUT", "INOUT"]

    def test_declare_forms(self):
        stmt = parse_statement(
            "CREATE PROCEDURE p () LANGUAGE SQL BEGIN"
            " DECLARE x, y INTEGER DEFAULT 0;"
            " DECLARE c CURSOR FOR SELECT a FROM t;"
            " DECLARE CONTINUE HANDLER FOR NOT FOUND SET x = 1;"
            " SET y = 2; END"
        )
        declarations = stmt.body.declarations
        assert isinstance(declarations[0], ast.DeclareVariable)
        assert declarations[0].names == ["x", "y"]
        assert isinstance(declarations[1], ast.DeclareCursor)
        assert isinstance(declarations[2], ast.DeclareHandler)

    def test_if_elseif_else(self):
        stmt = parse_statement(
            "CREATE PROCEDURE p (a INTEGER) LANGUAGE SQL BEGIN"
            " IF a = 1 THEN SET a = 2;"
            " ELSEIF a = 2 THEN SET a = 3;"
            " ELSE SET a = 4; END IF; END"
        )
        if_stmt = stmt.body.statements[0]
        assert len(if_stmt.branches) == 2
        assert if_stmt.else_branch is not None

    def test_case_statement(self):
        stmt = parse_statement(
            "CREATE PROCEDURE p (a INTEGER) LANGUAGE SQL BEGIN"
            " CASE WHEN a < 1 THEN SET a = 1; ELSE SET a = 0; END CASE; END"
        )
        assert isinstance(stmt.body.statements[0], ast.CaseStatement)

    def test_labeled_while_with_leave_iterate(self):
        stmt = parse_statement(
            "CREATE PROCEDURE p (a INTEGER) LANGUAGE SQL BEGIN"
            " w1: WHILE a < 10 DO"
            " SET a = a + 1;"
            " IF a = 5 THEN ITERATE w1; END IF;"
            " IF a = 8 THEN LEAVE w1; END IF;"
            " END WHILE w1; END"
        )
        loop = stmt.body.statements[0]
        assert isinstance(loop, ast.WhileStatement)
        assert loop.label == "w1"

    def test_repeat_until(self):
        stmt = parse_statement(
            "CREATE PROCEDURE p (a INTEGER) LANGUAGE SQL BEGIN"
            " REPEAT SET a = a + 1; UNTIL a > 3 END REPEAT; END"
        )
        assert isinstance(stmt.body.statements[0], ast.RepeatStatement)

    def test_for_loop_with_label(self):
        stmt = parse_statement(
            "CREATE PROCEDURE p () LANGUAGE SQL BEGIN"
            " f1: FOR rec AS SELECT a FROM t DO SET x = rec.a; END FOR f1; END"
        )
        loop = stmt.body.statements[0]
        assert isinstance(loop, ast.ForStatement)
        assert loop.loop_var == "rec"
        assert loop.label == "f1"

    def test_for_loop_with_cursor_name(self):
        stmt = parse_statement(
            "CREATE PROCEDURE p () LANGUAGE SQL BEGIN"
            " FOR rec AS cur CURSOR FOR SELECT a FROM t DO SET x = rec.a;"
            " END FOR; END"
        )
        assert stmt.body.statements[0].cursor_name == "cur"

    def test_loop_statement(self):
        stmt = parse_statement(
            "CREATE PROCEDURE p () LANGUAGE SQL BEGIN"
            " l1: LOOP LEAVE l1; END LOOP l1; END"
        )
        assert isinstance(stmt.body.statements[0], ast.LoopStatement)

    def test_cursor_statements(self):
        stmt = parse_statement(
            "CREATE PROCEDURE p () LANGUAGE SQL BEGIN"
            " OPEN c; FETCH c INTO a, b; CLOSE c; END"
        )
        kinds = [type(s).__name__ for s in stmt.body.statements]
        assert kinds == ["OpenCursor", "FetchCursor", "CloseCursor"]

    def test_select_into(self):
        stmt = parse_statement(
            "CREATE PROCEDURE p () LANGUAGE SQL BEGIN"
            " SELECT a, b INTO x, y FROM t WHERE c = 1; END"
        )
        into = stmt.body.statements[0]
        assert isinstance(into, ast.SelectInto)
        assert into.targets == ["x", "y"]

    def test_row_set(self):
        stmt = parse_statement(
            "CREATE PROCEDURE p () LANGUAGE SQL BEGIN"
            " SET (x, y) = (SELECT a, b FROM t); END"
        )
        assert stmt.body.statements[0].targets == ["x", "y"]

    def test_call_statement(self):
        stmt = parse_statement("CALL p(1, 'x')")
        assert isinstance(stmt, ast.CallStatement)
        assert len(stmt.args) == 2

    def test_return_without_value(self):
        stmt = parse_statement(
            "CREATE PROCEDURE p () LANGUAGE SQL BEGIN RETURN; END"
        )
        assert stmt.body.statements[0].value is None

    def test_label_requires_loop(self):
        with pytest.raises(ParseError):
            parse_statement(
                "CREATE PROCEDURE p () LANGUAGE SQL BEGIN x: SET a = 1; END"
            )


class TestTemporalModifier:
    def test_sequenced(self):
        stmt = parse_statement("VALIDTIME SELECT a FROM t")
        assert stmt.modifier.flavor is ast.TemporalFlavor.SEQUENCED
        assert stmt.modifier.begin is None

    def test_sequenced_with_context(self):
        stmt = parse_statement(
            "VALIDTIME [DATE '2010-01-01', DATE '2011-01-01'] SELECT a FROM t"
        )
        assert stmt.modifier.begin.value == Date.from_iso("2010-01-01")

    def test_nonsequenced(self):
        stmt = parse_statement("NONSEQUENCED VALIDTIME SELECT a FROM t")
        assert stmt.modifier.flavor is ast.TemporalFlavor.NONSEQUENCED

    def test_modifier_on_call(self):
        stmt = parse_statement("VALIDTIME CALL p(1)")
        assert stmt.modifier is not None


class TestScriptsAndErrors:
    def test_parse_script(self):
        statements = parse_script("SELECT 1; SELECT 2; SELECT 3")
        assert len(statements) == 3

    def test_trailing_semicolon_ok(self):
        assert parse_statement("SELECT 1;") is not None

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 FROM t WHERE ORDER ORDER")

    def test_missing_from_table_raises(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM WHERE")

    def test_unterminated_begin_raises(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE PROCEDURE p () LANGUAGE SQL BEGIN SET a = 1;")
