"""Type system and coercion tests."""

import pytest

from repro.sqlengine import types as t
from repro.sqlengine.errors import TypeError_
from repro.sqlengine.values import Date, Null


class TestTypePredicates:
    def test_numeric(self):
        assert t.INTEGER.is_numeric
        assert t.decimal(8, 2).is_numeric
        assert not t.varchar(5).is_numeric

    def test_integer(self):
        assert t.SqlType("SMALLINT").is_integer
        assert not t.FLOAT.is_integer

    def test_character(self):
        assert t.char(10).is_character
        assert t.varchar(10).is_character

    def test_date_boolean(self):
        assert t.DATE.is_date
        assert t.BOOLEAN.is_boolean


class TestRendering:
    def test_char_with_length(self):
        assert t.char(10).to_sql() == "CHAR(10)"

    def test_decimal_with_scale(self):
        assert t.decimal(8, 2).to_sql() == "DECIMAL(8, 2)"

    def test_plain(self):
        assert t.INTEGER.to_sql() == "INTEGER"


class TestCoercion:
    def test_null_passes_any_type(self):
        assert t.coerce(Null, t.INTEGER) is Null
        assert t.coerce(Null, t.char(3)) is Null

    def test_int_to_integer(self):
        assert t.coerce(5, t.INTEGER) == 5

    def test_float_to_integer_integral(self):
        assert t.coerce(5.0, t.INTEGER) == 5

    def test_float_to_integer_fractional_raises(self):
        with pytest.raises(TypeError_):
            t.coerce(5.5, t.INTEGER)

    def test_string_to_integer(self):
        assert t.coerce(" 42 ", t.INTEGER) == 42

    def test_bad_string_to_integer_raises(self):
        with pytest.raises(TypeError_):
            t.coerce("x", t.INTEGER)

    def test_int_to_float(self):
        assert t.coerce(2, t.FLOAT) == 2.0

    def test_number_to_char(self):
        assert t.coerce(42, t.varchar(10)) == "42"

    def test_char_overflow_raises_on_data_loss(self):
        with pytest.raises(TypeError_):
            t.coerce("abcdef", t.char(3))

    def test_char_trailing_blank_truncation_ok(self):
        assert t.coerce("ab   ", t.char(3)) == "ab "

    def test_string_to_date(self):
        assert t.coerce("2010-06-01", t.DATE) == Date.from_iso("2010-06-01")

    def test_date_passthrough(self):
        d = Date.from_iso("2010-06-01")
        assert t.coerce(d, t.DATE) is d

    def test_int_to_date_raises(self):
        with pytest.raises(TypeError_):
            t.coerce(5, t.DATE)

    def test_bool_coercions(self):
        assert t.coerce(True, t.BOOLEAN) is True
        with pytest.raises(TypeError_):
            t.coerce("yes", t.BOOLEAN)

    def test_bool_to_integer(self):
        assert t.coerce(True, t.INTEGER) == 1

    def test_date_to_char(self):
        assert t.coerce(Date.from_iso("2010-06-01"), t.varchar(12)) == "2010-06-01"


class TestInference:
    def test_infer(self):
        assert t.infer_type(5).name == "INTEGER"
        assert t.infer_type(5.0).name == "FLOAT"
        assert t.infer_type(True).name == "BOOLEAN"
        assert t.infer_type("ab").name == "VARCHAR"
        assert t.infer_type(Date.from_iso("2010-01-01")).name == "DATE"
        assert t.infer_type(Null).name == "NULL"
