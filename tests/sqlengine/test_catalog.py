"""Catalog unit tests."""

import pytest

from repro.sqlengine.catalog import Catalog, Routine
from repro.sqlengine.errors import CatalogError
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.storage import Column, Table
from repro.sqlengine.types import INTEGER


def table(name="t"):
    return Table(name, [Column("a", INTEGER)])


def routine(name="f", kind="FUNCTION"):
    if kind == "FUNCTION":
        stmt = parse_statement(
            f"CREATE FUNCTION {name} () RETURNS INTEGER LANGUAGE SQL RETURN 1"
        )
    else:
        stmt = parse_statement(
            f"CREATE PROCEDURE {name} () LANGUAGE SQL BEGIN SET x = 1; END"
        )
    return Routine(kind=kind, definition=stmt)


class TestTables:
    def test_case_insensitive_lookup(self):
        catalog = Catalog()
        catalog.add_table(table("Foo"))
        assert catalog.get_table("FOO").name == "Foo"
        assert catalog.has_table("foo")

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add_table(table())
        with pytest.raises(CatalogError):
            catalog.add_table(table())

    def test_replace_allowed(self):
        catalog = Catalog()
        catalog.add_table(table())
        replacement = table()
        catalog.add_table(replacement, replace=True)
        assert catalog.get_table("t") is replacement

    def test_table_view_namespace_shared(self):
        catalog = Catalog()
        catalog.add_table(table("x"))
        with pytest.raises(CatalogError):
            catalog.add_view("x", parse_statement("SELECT 1"))

    def test_drop_missing_raises(self):
        with pytest.raises(CatalogError):
            Catalog().drop_table("ghost")


class TestRoutines:
    def test_add_get(self):
        catalog = Catalog()
        catalog.add_routine(routine("f"))
        assert catalog.get_routine("F").kind == "FUNCTION"

    def test_duplicate_routine_rejected(self):
        catalog = Catalog()
        catalog.add_routine(routine())
        with pytest.raises(CatalogError):
            catalog.add_routine(routine())

    def test_replace_routine(self):
        catalog = Catalog()
        catalog.add_routine(routine())
        catalog.add_routine(routine(), replace=True)

    def test_routine_properties(self):
        function = routine("f")
        assert function.name == "f"
        assert function.params == []
        assert not function.is_table_function
        procedure = routine("p", kind="PROCEDURE")
        assert procedure.returns is None

    def test_table_function_detection(self):
        stmt = parse_statement(
            "CREATE FUNCTION g () RETURNS ROW(a INTEGER) ARRAY LANGUAGE SQL"
            " BEGIN RETURN NULL; END"
        )
        assert Routine(kind="FUNCTION", definition=stmt).is_table_function

    def test_drop_routine(self):
        catalog = Catalog()
        catalog.add_routine(routine())
        catalog.drop_routine("f")
        assert not catalog.has_routine("f")
        with pytest.raises(CatalogError):
            catalog.get_routine("f")
