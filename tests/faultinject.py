"""Fault-injection harness for the transaction tests.

``snapshot_db`` captures everything rollback promises to restore —
row data, version counters, catalog contents, schema version, registry
entries — so a test can assert that a statement crashed mid-flight left
the database byte-identical to never having run it.  ``install_fault``
arms a :class:`~repro.sqlengine.txn.FaultPlan` on the engine; faults
are single-shot, so re-running the failed statement after
``clear_fault`` (or even without clearing) succeeds.
"""

from __future__ import annotations

import copy
from typing import Any, Optional

from repro.sqlengine.engine import Database
from repro.sqlengine.txn import FaultPlan


def snapshot_db(db: Database) -> dict[str, Any]:
    """A deep-enough snapshot of all state rollback must restore."""
    tables = {}
    for name, table in db.catalog._tables.items():
        tables[name] = {
            "columns": [
                (c.name, str(c.type), c.not_null, c.primary_key)
                for c in table.columns
            ],
            "rows": copy.deepcopy(table.rows),
            "version": table.version,
        }
    return {
        "tables": tables,
        "views": sorted(db.catalog._views.keys()),
        "routines": sorted(db.catalog._routines.keys()),
        "schema_version": db.catalog.schema_version,
    }


def snapshot_registry(registry) -> dict[str, Any]:
    """The registered temporal-table set (names and timestamp columns)."""
    return {
        key: (info.name, info.begin_column, info.end_column)
        for key, info in registry._tables.items()
    }


def assert_snapshot_equal(db: Database, expected: dict[str, Any]) -> None:
    actual = snapshot_db(db)
    assert actual["schema_version"] == expected["schema_version"]
    assert actual["views"] == expected["views"]
    assert actual["routines"] == expected["routines"]
    assert sorted(actual["tables"]) == sorted(expected["tables"])
    for name, want in expected["tables"].items():
        got = actual["tables"][name]
        assert got["columns"] == want["columns"], f"{name}: column layout"
        assert got["rows"] == want["rows"], f"{name}: row data"
        assert got["version"] == want["version"], f"{name}: version counter"
    # hash indexes must never describe data newer than the version says
    for name, table in db.catalog._tables.items():
        for built, _ in table._hash_indexes.values():
            assert built <= table.version, f"{name}: stale hash index survived"


def install_fault(
    db: Database, site: str, target: Optional[str] = None, at: int = 1
) -> FaultPlan:
    plan = FaultPlan(site, target=target, at=at)
    db.txn.fault_plan = plan
    return plan


def clear_fault(db: Database) -> None:
    db.txn.fault_plan = None
